package server

// The tenant layer: one caching rio.Engine, one bounded submission
// queue and one executor goroutine per tenant. The executor is the only
// goroutine that calls RunCompiledContext on the tenant's engine — the
// engine's cache surface (Precompile, CacheStats, Progress) is safe for
// concurrent use, but runs are not, so serialization through the queue
// is what makes the whole service safe. Admission is the try-send on
// the bounded queue: a full queue rejects instead of blocking, which is
// the 429 backpressure path.

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rio"
	"rio/internal/analyze"
	"rio/internal/server/ingest"
)

// flow is one registered (graph, mapping) pair: the parsed submission,
// its preflight report, and the singleflight gate the first submitter
// closes once preflight + compile finished. The compiled program itself
// lives in the tenant engine's cache, keyed by the canonical *Graph.
type flow struct {
	id  string // ingest content hash
	sub *ingest.Submission

	// ready is closed by the registering submitter once report/err are
	// set; concurrent submitters of the same hash wait on it.
	ready  chan struct{}
	report *analyze.Report
	err    error

	runs atomic.Int64
}

// flowTableFullError rejects a submission when the tenant's flow table
// is at Config.MaxFlows.
type flowTableFullError struct {
	tenant string
	limit  int
}

func (e *flowTableFullError) Error() string {
	return fmt.Sprintf("tenant %q flow table is full (%d flows registered)", e.tenant, e.limit)
}

// execReq is one admitted execution request, handed from the HTTP
// handler to the tenant's executor through the bounded queue.
type execReq struct {
	flow   *flow
	kernel rio.Kernel
	name   string
	ctx    context.Context // the HTTP request's context
	queued time.Time
	done   chan execResult // buffered(1): the executor never blocks on it
}

type execResult struct {
	err       error
	executed  int64
	wall      time.Duration
	queueWait time.Duration
}

type tenant struct {
	name string
	eng  *rio.Engine
	reg  *registry

	mu    sync.Mutex
	flows map[string]*flow

	queue chan *execReq
}

// register inserts sub's flow into the tenant's table, or returns the
// already-registered flow for its hash. winner reports whether the
// caller registered it and therefore owns preflight + compile (and must
// close f.ready, unregistering on failure).
func (t *tenant) register(sub *ingest.Submission) (f *flow, winner bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.flows[sub.Hash]; ok {
		return f, false, nil
	}
	if len(t.flows) >= t.reg.cfg.MaxFlows {
		return nil, false, &flowTableFullError{tenant: t.name, limit: t.reg.cfg.MaxFlows}
	}
	f = &flow{id: sub.Hash, sub: sub, ready: make(chan struct{})}
	t.flows[sub.Hash] = f
	return f, true, nil
}

// unregister removes a flow whose preflight or compile failed, so a
// corrected resubmission is not shadowed by the failed attempt.
func (t *tenant) unregister(f *flow) {
	t.mu.Lock()
	if t.flows[f.id] == f {
		delete(t.flows, f.id)
	}
	t.mu.Unlock()
}

// lookup returns the ready flow registered under id, nil if absent or
// still (or terminally) unready. Waiting for readiness is the submit
// path's job; by the time a client holds an id, its flow is ready.
func (t *tenant) lookup(id string) *flow {
	t.mu.Lock()
	f := t.flows[id]
	t.mu.Unlock()
	if f == nil {
		return nil
	}
	select {
	case <-f.ready:
		if f.err != nil {
			return nil
		}
		return f
	default:
		return nil
	}
}

// snapshot returns the tenant's ready flows, ordered by id for stable
// listings.
func (t *tenant) snapshot() []*flow {
	t.mu.Lock()
	flows := make([]*flow, 0, len(t.flows))
	for _, f := range t.flows {
		select {
		case <-f.ready:
			if f.err == nil {
				flows = append(flows, f)
			}
		default:
		}
	}
	t.mu.Unlock()
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
	return flows
}

// admit try-sends req onto the bounded queue. False means the request
// was not admitted — the queue is full (429) or the registry started
// draining (503; the caller distinguishes via Draining()). An admitted
// request is counted in the registry's drain WaitGroup until its
// execution (or skip) finishes. The flag check and the Add share the
// registry lock with drain's flag flip, so every Add happens before
// the flip — and hence before drain's Wait — or observes the flag and
// rejects: no admitted request can slip past the drain barrier.
func (t *tenant) admit(req *execReq) bool {
	r := t.reg
	r.mu.Lock()
	if r.draining.Load() {
		r.mu.Unlock()
		return false
	}
	r.inflight.Add(1)
	r.mu.Unlock()
	select {
	case t.queue <- req:
		return true
	default:
		r.inflight.Done()
		return false
	}
}

// executor serializes the tenant's executions. It exits when the
// registry's stopped channel closes, which drain only does after every
// admitted request completed — so a queued request is never abandoned.
func (t *tenant) executor() {
	defer t.reg.executors.Done()
	for {
		select {
		case req := <-t.queue:
			t.execute(req)
			t.reg.inflight.Done()
		case <-t.reg.stopped:
			return
		}
	}
}

// execute runs one admitted request on the tenant engine. The run
// context is the client's request context; the registry's abort context
// (armed when a Drain deadline expires) cancels it too, and the engine
// adds Config.Timeout on top (rio.Options.Timeout). Execution runs
// under pprof labels naming the tenant and flow, so CPU profiles of the
// serving process split by tenant.
func (t *tenant) execute(req *execReq) {
	queueWait := time.Since(req.queued)
	if req.ctx.Err() != nil {
		req.done <- execResult{err: req.ctx.Err(), queueWait: queueWait}
		return
	}
	runCtx, cancel := context.WithCancel(req.ctx)
	stop := context.AfterFunc(t.reg.abortCtx, cancel)
	defer stop()
	defer cancel()

	var err error
	start := time.Now()
	pprof.Do(runCtx, pprof.Labels("rio_tenant", t.name, "rio_flow", req.flow.id, "rio_kernel", req.name), func(ctx context.Context) {
		err = t.eng.RunGraphContext(ctx, req.flow.sub.Graph, req.kernel)
	})
	wall := time.Since(start)
	res := execResult{err: err, wall: wall, queueWait: queueWait}
	if err == nil {
		req.flow.runs.Add(1)
		p := t.eng.Progress()
		res.executed = p.Executed()
	}
	req.done <- res
}

// registry owns the tenant table and the drain protocol.
type registry struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant

	draining atomic.Bool
	// inflight counts admitted execution requests; drain waits on it.
	inflight sync.WaitGroup
	// executors counts executor goroutines; they exit when stopped
	// closes.
	executors sync.WaitGroup
	stopped   chan struct{}
	// abortCtx is canceled when a Drain deadline expires: every running
	// execution's context descends from it.
	abortCtx context.Context
	abort    context.CancelFunc

	drainOnce sync.Once
	drainErr  error
}

func newRegistry(cfg Config) *registry {
	ctx, cancel := context.WithCancel(context.Background())
	return &registry{
		cfg:      cfg,
		tenants:  make(map[string]*tenant),
		stopped:  make(chan struct{}),
		abortCtx: ctx,
		abort:    cancel,
	}
}

// tenant returns the named tenant, lazily creating its engine, queue
// and executor, bounded by Config.MaxTenants.
func (r *registry) tenant(name string, cfg Config) (*tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[name]; ok {
		return t, nil
	}
	if len(r.tenants) >= cfg.MaxTenants {
		return nil, fmt.Errorf("tenant table is full (%d tenants); tenant %q not admitted", cfg.MaxTenants, name)
	}
	eng, err := rio.NewEngine(rio.Options{
		Workers: cfg.Workers,
		Timeout: cfg.Timeout,
		Verify:  cfg.Verify,
		Prune:   cfg.Prune,
	})
	if err != nil {
		return nil, fmt.Errorf("creating engine for tenant %q: %w", name, err)
	}
	t := &tenant{
		name:  name,
		eng:   eng,
		reg:   r,
		flows: make(map[string]*flow),
		queue: make(chan *execReq, cfg.QueueDepth),
	}
	if cfg.PublishExpvar {
		rio.PublishExpvar("rio."+name, eng)
	}
	r.tenants[name] = t
	r.executors.Add(1)
	go t.executor()
	cfg.Logf("rio-serve: tenant %q admitted (%d workers, queue %d)", name, cfg.Workers, cfg.QueueDepth)
	return t, nil
}

func (r *registry) lookup(name string) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// drain implements Server.Drain: flip the draining flag (handlers
// reject new work), wait for admitted requests, cancel them if ctx
// expires first, then stop the executors.
func (r *registry) drain(ctx context.Context) error {
	r.drainOnce.Do(func() {
		// The flag flips under the registry lock (see admit): once the
		// store is visible, no admission can add to inflight, so the
		// Wait below covers every request the queues will ever hold.
		r.mu.Lock()
		r.draining.Store(true)
		r.mu.Unlock()
		done := make(chan struct{})
		go func() {
			r.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			r.abort() // cancel running executions; they unwind cooperatively
			<-done
			r.drainErr = ctx.Err()
		}
		close(r.stopped)
		r.executors.Wait()
		r.cfg.Logf("rio-serve: drained")
	})
	return r.drainErr
}
