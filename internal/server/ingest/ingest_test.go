package ingest

// Unit tests of the shared submission path: envelope vs bare-graph
// parsing, mapping-spec resolution and validation, content-hash
// stability (the mapping half of the wire format; the graph half's
// round-trip fuzz lives in internal/stf).

import (
	"bytes"
	"strings"
	"testing"

	"rio/internal/analyze"
	"rio/internal/graphs"
	"rio/internal/stf"
)

func wire(t *testing.T, g *stf.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseBareGraph(t *testing.T) {
	g := graphs.LU(3)
	sub, err := Parse(bytes.NewReader(wire(t, g)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Graph.Tasks) != len(g.Tasks) || sub.Graph.NumData != g.NumData {
		t.Errorf("parsed %d tasks/%d data, want %d/%d", len(sub.Graph.Tasks), sub.Graph.NumData, len(g.Tasks), g.NumData)
	}
	if !sub.MappingSpec.IsDefault() {
		t.Error("bare graph did not default to the cyclic mapping")
	}
	if sub.Hash == "" {
		t.Error("no content hash derived")
	}
}

func TestParseEnvelopeWithMapping(t *testing.T) {
	g := graphs.LU(3)
	body := []byte(`{"graph":` + string(wire(t, g)) + `,"mapping":{"spec":"blockcyclic:2"}}`)
	sub, err := Parse(bytes.NewReader(body), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.MappingSpec.Canonical(); got != "blockcyclic:2" {
		t.Errorf("mapping = %q, want blockcyclic:2", got)
	}

	// The shorthand string form must parse to the same submission —
	// same mapping, same identity — as the object form.
	short, err := Parse(bytes.NewReader([]byte(`{"graph":`+string(wire(t, g))+`,"mapping":"blockcyclic:2"}`)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if short.MappingSpec.Canonical() != "blockcyclic:2" || short.Hash != sub.Hash {
		t.Errorf("string-form mapping: canonical %q hash %q, want %q %q",
			short.MappingSpec.Canonical(), short.Hash, "blockcyclic:2", sub.Hash)
	}

	bare, err := Parse(bytes.NewReader(wire(t, g)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Hash == bare.Hash {
		t.Error("mapping is not part of the flow identity: envelope and bare hashes collide")
	}
}

func TestParseRejects(t *testing.T) {
	for name, body := range map[string]string{
		"not json":        "{nope",
		"no graph":        `{"mapping":{"spec":"cyclic"}}`,
		"bad mode":        `{"name":"x","num_data":1,"tasks":[{"kernel":0,"accesses":[{"data":0,"mode":"X"}]}]}`,
		"data oob":        `{"name":"x","num_data":1,"tasks":[{"kernel":0,"accesses":[{"data":9,"mode":"W"}]}]}`,
		"both mappings":   `{"graph":{"name":"x","num_data":0,"tasks":[]},"mapping":{"spec":"block","assign":[0]}}`,
		"assign mismatch": `{"graph":{"name":"x","num_data":1,"tasks":[{"kernel":0,"accesses":[{"data":0,"mode":"W"}]}]},"mapping":{"assign":[0,1]}}`,
		"assign oob":      `{"graph":{"name":"x","num_data":1,"tasks":[{"kernel":0,"accesses":[{"data":0,"mode":"W"}]}]},"mapping":{"assign":[7]}}`,
		"unknown spec":    `{"graph":{"name":"x","num_data":0,"tasks":[]},"mapping":{"spec":"warp"}}`,
	} {
		if _, err := Parse(strings.NewReader(body), 4); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHashStability(t *testing.T) {
	g := graphs.Cholesky(4)
	h1, err := Hash(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(g, &MappingSpec{Spec: "cyclic"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("nil and explicit-cyclic mapping specs hash differently")
	}
	// Same bytes parsed twice hash identically (the dedup property the
	// server's flow table relies on).
	s1, err := Parse(bytes.NewReader(wire(t, g)), 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytes.NewReader(wire(t, g)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Hash != s2.Hash {
		t.Error("identical submissions hash differently")
	}
	if s1.Hash != h1 {
		t.Error("Parse and Hash disagree on the same flow")
	}
}

func TestExplicitSpecRoundTrip(t *testing.T) {
	g := graphs.LU(3)
	const workers = 3
	m, err := BuildMapping("owner2d", g, workers)
	if err != nil {
		t.Fatal(err)
	}
	ms := ExplicitSpec(g, m)
	got, err := ms.Build(g, workers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Tasks {
		id := stf.TaskID(i)
		if got(id) != m(id) {
			t.Fatalf("task %d: explicit round-trip maps to %d, original to %d", i, got(id), m(id))
		}
	}
	if !strings.HasPrefix(ms.Canonical(), "assign:") {
		t.Errorf("canonical form = %q, want assign:…", ms.Canonical())
	}
}

func TestNewSubmissionValidates(t *testing.T) {
	g := graphs.LU(3)
	if _, err := NewSubmission(g, nil, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewSubmission(g, &MappingSpec{Assign: []int{0}}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	sub, err := NewSubmission(g, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Workers != 2 || sub.Mapping == nil {
		t.Errorf("submission not populated: %+v", sub)
	}
}

func TestPreflightRejectsWarning(t *testing.T) {
	// Read-before-first-write: the access lint warns, which rejects.
	g := stf.NewGraph("bad", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 0, 0, 0, stf.W(0))
	sub, err := NewSubmission(g, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Preflight(sub, analyze.PassAccess|analyze.PassMapping)
	if err == nil {
		t.Fatal("uninit-read flow passed preflight")
	}
	if report == nil || report.Warnings == 0 {
		t.Error("rejection carries no warning findings")
	}

	clean, err := NewSubmission(graphs.LU(3), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Preflight(clean, analyze.PassAccess|analyze.PassMapping); err != nil {
		t.Errorf("clean flow rejected: %v", err)
	}
}

func TestWorkloadGrammarShared(t *testing.T) {
	// The grammar is analyze.WorkloadGraph's — every workload the CLI
	// tools accept must come through here too.
	for _, wl := range []string{"lu", "cholesky", "gemm", "wavefront", "chain", "independent", "random"} {
		if _, err := Workload(wl, 3, 1); err != nil {
			t.Errorf("workload %s: %v", wl, err)
		}
	}
	if _, err := Workload("warp", 3, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
