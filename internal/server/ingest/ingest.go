// Package ingest is the single submission path shared by the rio-serve
// service and the CLI tools (rio-vet, rio-graph): it parses the JSON
// wire format — the graph form written by rio-graph and read by rio-vet,
// optionally wrapped in an envelope that adds a mapping — validates the
// (graph, workers, mapping) instance, preflights it through
// internal/analyze, and derives the content hash that gives a graph a
// stable identity across requests.
//
// The service and the tools parsing through one package is a protocol
// guarantee, not a convenience: a flow that rio-vet vets clean is
// accepted by the server byte-for-byte, and a flow the server rejects
// can be reproduced and diagnosed locally with the same tools.
package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"rio/internal/analyze"
	"rio/internal/stf"
)

// MaxBodyBytes bounds a submission body. The server enforces it with
// http.MaxBytesReader; Parse enforces it again for non-HTTP callers.
const MaxBodyBytes = 32 << 20

// MappingSpec is the wire form of a static task→worker mapping. Exactly
// one of the fields may be set:
//
//   - Spec names a parametric mapping in the grammar the CLI tools use:
//     cyclic | block | blockcyclic:B | single:W | owner2d.
//   - Assign lists one worker per task (Assign[i] owns task i) — the
//     fully explicit form, e.g. the output of an automap run.
//
// A nil *MappingSpec (or a zero one) means the cyclic default.
//
// On the wire the mapping is either the spec string directly
// ("mapping": "blockcyclic:2") or the object form ({"spec": …} /
// {"assign": […]}); UnmarshalJSON accepts both.
type MappingSpec struct {
	Spec   string `json:"spec,omitempty"`
	Assign []int  `json:"assign,omitempty"`
}

// UnmarshalJSON accepts the shorthand string form alongside the object
// form, so envelopes can say "mapping": "blockcyclic:2" the way every
// CLI -mapping flag is written.
func (ms *MappingSpec) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		*ms = MappingSpec{Spec: s}
		return nil
	}
	// Alias dodges recursion into this method.
	type plain MappingSpec
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*ms = MappingSpec(p)
	return nil
}

// IsDefault reports whether the spec denotes the cyclic default mapping
// (nil, empty, or literally "cyclic"). Default-mapped submissions can
// share a tenant engine's compiled-program cache directly.
func (ms *MappingSpec) IsDefault() bool {
	return ms == nil || (len(ms.Assign) == 0 && (ms.Spec == "" || ms.Spec == "cyclic"))
}

// Canonical is the stable text form of the spec used for hashing and
// display: "cyclic" for the default, the spec string, or "assign:w0,w1,…"
// for the explicit form.
func (ms *MappingSpec) Canonical() string {
	if ms.IsDefault() {
		return "cyclic"
	}
	if len(ms.Assign) > 0 {
		var b strings.Builder
		b.WriteString("assign:")
		for i, w := range ms.Assign {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", w)
		}
		return b.String()
	}
	return ms.Spec
}

// Build resolves the spec into a runnable mapping for g over workers,
// validating it (explicit assignments must cover every task and stay in
// [0, workers)). The parametric grammar is analyze.ParseMapping's — the
// same one the CLI -mapping flags accept.
func (ms *MappingSpec) Build(g *stf.Graph, workers int) (stf.Mapping, error) {
	if workers < 1 {
		return nil, fmt.Errorf("ingest: mapping needs a positive worker count (got %d)", workers)
	}
	if ms != nil && ms.Spec != "" && len(ms.Assign) > 0 {
		return nil, errors.New("ingest: mapping declares both spec and assign; use one")
	}
	if ms != nil && len(ms.Assign) > 0 {
		if g != nil && len(ms.Assign) != len(g.Tasks) {
			return nil, fmt.Errorf("ingest: explicit mapping assigns %d tasks, flow has %d", len(ms.Assign), len(g.Tasks))
		}
		assign := make([]stf.WorkerID, len(ms.Assign))
		for i, w := range ms.Assign {
			if w < 0 || w >= workers {
				return nil, fmt.Errorf("ingest: explicit mapping sends task %d to worker %d, out of range [0,%d)", i, w, workers)
			}
			assign[i] = stf.WorkerID(w)
		}
		return func(id stf.TaskID) stf.WorkerID {
			if id < 0 || int(id) >= len(assign) {
				return stf.SharedWorker
			}
			return assign[id]
		}, nil
	}
	spec := "cyclic"
	if ms != nil && ms.Spec != "" {
		spec = ms.Spec
	}
	return analyze.ParseMapping(spec, g, workers)
}

// ExplicitSpec samples m over the tasks of g into the explicit wire form,
// so any programmatic mapping can be shipped to the server losslessly.
func ExplicitSpec(g *stf.Graph, m stf.Mapping) *MappingSpec {
	assign := make([]int, len(g.Tasks))
	for i := range g.Tasks {
		assign[i] = int(m(stf.TaskID(i)))
	}
	return &MappingSpec{Assign: assign}
}

// Submission is one parsed, validated flow ready for preflight and
// compilation.
type Submission struct {
	// Graph is the recorded task flow.
	Graph *stf.Graph
	// MappingSpec is the submission's mapping in wire form (nil = cyclic
	// default); Mapping is its resolved, validated closure.
	MappingSpec *MappingSpec
	Mapping     stf.Mapping
	// Workers is the worker count the instance was validated against.
	Workers int
	// Hash is the content identity of (graph, mapping): two submissions
	// with equal hashes are the same program and may share one compiled
	// form. Graph JSON is canonical (fixed field order, no maps), so the
	// hash is stable across processes and machines.
	Hash string
}

// envelope is the submit-body wire form: either a bare graph (exactly
// the rio-graph -json output) or {"graph": …, "mapping": …}.
type envelope struct {
	Graph   json.RawMessage `json:"graph,omitempty"`
	Mapping *MappingSpec    `json:"mapping,omitempty"`
	// Tasks detects a bare-graph body: a graph object has a tasks field,
	// an envelope does not.
	Tasks json.RawMessage `json:"tasks,omitempty"`
}

// Parse reads one submission — a bare graph JSON document or an
// envelope adding a mapping — validates the (graph, workers, mapping)
// instance through the same analyze entry points the CLI tools use, and
// computes its content hash.
func Parse(r io.Reader, workers int) (*Submission, error) {
	body, err := io.ReadAll(io.LimitReader(r, MaxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("ingest: reading submission: %w", err)
	}
	if len(body) > MaxBodyBytes {
		return nil, fmt.Errorf("ingest: submission exceeds %d bytes", MaxBodyBytes)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("ingest: decoding submission: %w", err)
	}
	graphBytes := []byte(env.Graph)
	if env.Graph == nil {
		if env.Tasks == nil {
			return nil, errors.New(`ingest: submission has neither "graph" nor "tasks"; POST a graph document or {"graph": …, "mapping": …}`)
		}
		graphBytes = body // bare graph body
	}
	g, err := stf.ReadJSON(strings.NewReader(string(graphBytes)))
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return NewSubmission(g, env.Mapping, workers)
}

// NewSubmission validates an already-parsed graph + mapping spec and
// derives its hash — the non-HTTP entry used by tools that built the
// graph in process.
func NewSubmission(g *stf.Graph, ms *MappingSpec, workers int) (*Submission, error) {
	m, err := ms.Build(g, workers)
	if err != nil {
		return nil, err
	}
	if err := analyze.ValidateInstance(g, workers, m); err != nil {
		return nil, err
	}
	hash, err := Hash(g, ms)
	if err != nil {
		return nil, err
	}
	return &Submission{Graph: g, MappingSpec: ms, Mapping: m, Workers: workers, Hash: hash}, nil
}

// Hash returns the content identity of a (graph, mapping) pair: the
// hex-encoded SHA-256 of the canonical graph serialization and the
// canonical mapping form. Submitting the same flow twice — from
// different clients, processes or machines — yields the same hash, which
// is what lets a server compile it once and replay it for everyone.
func Hash(g *stf.Graph, ms *MappingSpec) (string, error) {
	h := sha256.New()
	if err := g.WriteJSON(h); err != nil {
		return "", fmt.Errorf("ingest: hashing graph: %w", err)
	}
	io.WriteString(h, "\x00mapping:")
	io.WriteString(h, ms.Canonical())
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// Preflight runs the static-analysis passes over a validated submission
// exactly as rio.Options.Preflight would before a run: findings of
// Warning or worse reject it with a *analyze.PreflightError. The
// returned report carries every finding either way.
func Preflight(sub *Submission, passes analyze.Passes) (*analyze.Report, error) {
	report := analyze.Graph(sub.Graph, analyze.Config{
		Passes:  passes,
		Workers: sub.Workers,
		Mapping: sub.Mapping,
		InOrder: true,
	})
	if report.Reject() {
		return report, &analyze.PreflightError{Report: report}
	}
	return report, nil
}

// LoadGraphFile reads a bare graph JSON file (as written by rio-graph
// -json) — the CLI half of the shared submission path.
func LoadGraphFile(path string) (*stf.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stf.ReadJSON(f)
}

// Workload builds one of the named generator workloads; the grammar is
// analyze.WorkloadGraph's, shared by rio-vet, rio-graph and rio-serve's
// test harness.
func Workload(name string, size int, seed int64) (*stf.Graph, error) {
	return analyze.WorkloadGraph(name, size, seed)
}

// BuildMapping resolves a CLI -mapping spec string for g over workers
// (the parametric grammar of MappingSpec.Spec).
func BuildMapping(spec string, g *stf.Graph, workers int) (stf.Mapping, error) {
	return (&MappingSpec{Spec: spec}).Build(g, workers)
}
