package server

// Integration harness: httptest servers over real engines, driven the
// way clients will drive rio-serve. The suite runs under -race in the
// dedicated serve-integration CI job; the three acceptance properties
// of the serving PR live here — N concurrent clients submitting the
// same graph trigger exactly one compile (cache misses == 1),
// submissions against a full queue get 429 with Retry-After, and a
// too-slow execution is canceled into a 504 mid-request.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"context"

	"rio/internal/graphs"
	"rio/internal/stf"
)

// newTestServer starts an httptest server over cfg and returns it with
// a cleanup that drains it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs
}

// graphJSON serializes g to its wire form.
func graphJSON(t *testing.T, g *stf.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// do issues one request with an optional tenant header and decodes the
// JSON response body into out (when out is non-nil).
func do(t *testing.T, method, url, tenant string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp
}

func submitFlow(t *testing.T, base, tenant string, g *stf.Graph) flowInfo {
	t.Helper()
	var info flowInfo
	resp := do(t, "POST", base+"/v1/flows", tenant, graphJSON(t, g), &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return info
}

func runFlow(t *testing.T, base, tenant, id, kernel string) runResult {
	t.Helper()
	var res runResult
	body := []byte(nil)
	if kernel != "" {
		body = []byte(fmt.Sprintf(`{"kernel":%q}`, kernel))
	}
	resp := do(t, "POST", base+"/v1/flows/"+id+"/run", tenant, body, &res)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("run: status %d: %s", resp.StatusCode, raw)
	}
	return res
}

func progressOf(t *testing.T, base, tenant string) progressInfo {
	t.Helper()
	var p progressInfo
	resp := do(t, "GET", base+"/v1/progress", tenant, nil, &p)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: status %d", resp.StatusCode)
	}
	return p
}

func TestSubmitRunRoundTrip(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, Verify: true})
	g := graphs.LU(4)

	info := submitFlow(t, hs.URL, "", g)
	if info.Cached {
		t.Error("first submission reported cached")
	}
	if info.Tasks != len(g.Tasks) || info.Data != g.NumData {
		t.Errorf("flow info %+v does not match the graph (%d tasks, %d data)", info, len(g.Tasks), g.NumData)
	}
	if !info.Verified {
		t.Error("flow not verified despite Config.Verify")
	}

	// Resubmitting the same bytes is a flow-level cache hit.
	again := submitFlow(t, hs.URL, "", g)
	if !again.Cached || again.ID != info.ID {
		t.Errorf("resubmission: cached=%v id=%q, want cached=true id=%q", again.Cached, again.ID, info.ID)
	}

	for i := 0; i < 3; i++ {
		res := runFlow(t, hs.URL, "", info.ID, "")
		if res.Executed != int64(len(g.Tasks)) {
			t.Fatalf("run %d executed %d tasks, want %d", i, res.Executed, len(g.Tasks))
		}
	}

	p := progressOf(t, hs.URL, "")
	if p.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (one compile serving every replay)", p.Cache.Misses)
	}
	if p.Cache.Entries != 1 || p.Flows != 1 {
		t.Errorf("entries/flows = %d/%d, want 1/1", p.Cache.Entries, p.Flows)
	}
	if got := p.Progress.Executed(); got != int64(len(g.Tasks)) {
		t.Errorf("progress executed = %d, want %d (last run's counters)", got, len(g.Tasks))
	}
}

// TestConcurrentSubmitSingleCompile is the acceptance property of the
// admission path: N concurrent clients submitting the same graph bytes
// must converge on one flow and exactly one compile+certify.
func TestConcurrentSubmitSingleCompile(t *testing.T) {
	const clients = 16
	_, hs := newTestServer(t, Config{Workers: 2, Verify: true})
	wire := graphJSON(t, graphs.Cholesky(5))

	var (
		wg    sync.WaitGroup
		gate  = make(chan struct{})
		infos [clients]flowInfo
	)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			<-gate
			resp := do(t, "POST", hs.URL+"/v1/flows", "", wire, &infos[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	close(gate)
	wg.Wait()

	for i := 1; i < clients; i++ {
		if infos[i].ID != infos[0].ID {
			t.Fatalf("client %d got flow %q, client 0 got %q", i, infos[i].ID, infos[0].ID)
		}
	}
	fresh := 0
	for i := range infos {
		if !infos[i].Cached {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d clients compiled fresh, want exactly 1 winner", fresh)
	}
	p := progressOf(t, hs.URL, "")
	if p.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 under %d concurrent submitters", p.Cache.Misses, clients)
	}
	if p.Flows != 1 {
		t.Errorf("flows = %d, want 1", p.Flows)
	}

	// And the shared program runs for everyone.
	res := runFlow(t, hs.URL, "", infos[0].ID, "spin")
	if res.Executed == 0 {
		t.Error("run executed no tasks")
	}
}

// TestConcurrentTenants drives separate tenants concurrently through
// submit/run/progress: engines, queues and caches must be isolated.
func TestConcurrentTenants(t *testing.T) {
	const tenants = 4
	_, hs := newTestServer(t, Config{Workers: 2})
	g := graphs.LU(4)
	wire := graphJSON(t, g)

	var wg sync.WaitGroup
	wg.Add(tenants)
	for i := 0; i < tenants; i++ {
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("team-%d", i)
			var info flowInfo
			resp := do(t, "POST", hs.URL+"/v1/flows", tenant, wire, &info)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: submit status %d", tenant, resp.StatusCode)
				return
			}
			for r := 0; r < 3; r++ {
				res := runFlow(t, hs.URL, tenant, info.ID, "noop")
				if res.Executed != int64(len(g.Tasks)) {
					t.Errorf("%s: run %d executed %d, want %d", tenant, r, res.Executed, len(g.Tasks))
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenants; i++ {
		p := progressOf(t, hs.URL, fmt.Sprintf("team-%d", i))
		if p.Cache.Misses != 1 {
			t.Errorf("tenant %d: misses = %d, want 1 (per-tenant cache, one compile each)", i, p.Cache.Misses)
		}
	}
}

// TestQueueBackpressure is the 429 acceptance property: with a queue of
// depth 1, a request arriving while one run executes and another waits
// must be rejected with 429 and a Retry-After hint, and the queued work
// must still complete.
func TestQueueBackpressure(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 1, RetryAfter: 2 * time.Second})
	// ~300ms of off-CPU work per run: long enough to hold the queue
	// while the rejected request is issued.
	g := graphs.Chain(300)
	info := submitFlow(t, hs.URL, "", g)

	results := make(chan runResult, 2)
	for i := 0; i < 2; i++ {
		go func() {
			results <- runFlow(t, hs.URL, "", info.ID, "sleep")
		}()
	}
	// Wait until one run executes and the other occupies the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := progressOf(t, hs.URL, "")
		if p.QueueLen >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := do(t, "POST", hs.URL+"/v1/flows/"+info.ID+"/run", "", []byte(`{"kernel":"sleep"}`), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 against a full queue", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q", ra, "2")
	}

	for i := 0; i < 2; i++ {
		res := <-results
		if res.Executed != int64(len(g.Tasks)) {
			t.Errorf("admitted run executed %d tasks, want %d", res.Executed, len(g.Tasks))
		}
	}
}

// TestRequestTimeout is the mid-request-timeout acceptance property: an
// execution exceeding Config.Timeout is canceled cooperatively and the
// request answers 504.
func TestRequestTimeout(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, Timeout: 100 * time.Millisecond})
	// 2ms sleeps × 400 tasks ≈ 800ms of work against a 100ms budget.
	g := stf.NewGraph("slow", 1)
	for i := 0; i < 400; i++ {
		g.Add(0, 0, 0, 2, stf.RW(0))
	}
	info := submitFlow(t, hs.URL, "", g)

	start := time.Now()
	resp := do(t, "POST", hs.URL+"/v1/flows/"+info.ID+"/run", "", []byte(`{"kernel":"sleep"}`), nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, raw)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v to fire; cancellation is not prompt", elapsed)
	}
	// The engine must be healthy after the canceled run.
	fast := submitFlow(t, hs.URL, "", graphs.Chain(8))
	if res := runFlow(t, hs.URL, "", fast.ID, "noop"); res.Executed != 8 {
		t.Errorf("post-timeout run executed %d, want 8", res.Executed)
	}
}

// TestDrain exercises graceful shutdown: once Drain is called, new work
// is 503 and health flips, but the in-flight run finishes.
func TestDrain(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2})
	g := graphs.Chain(200) // ~200ms under the sleep kernel
	info := submitFlow(t, hs.URL, "", g)

	done := make(chan runResult, 1)
	go func() { done <- runFlow(t, hs.URL, "", info.ID, "sleep") }()
	deadline := time.Now().Add(10 * time.Second)
	for !progressOf(t, hs.URL, "").Progress.Running {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if resp := do(t, "POST", hs.URL+"/v1/flows", "", graphJSON(t, graphs.Chain(4)), nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp := do(t, "GET", hs.URL+"/healthz", "", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}

	res := <-done
	if res.Executed != int64(len(g.Tasks)) {
		t.Errorf("in-flight run executed %d tasks, want %d (drain must not cancel it)", res.Executed, len(g.Tasks))
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestSubmitErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	if resp := do(t, "POST", hs.URL+"/v1/flows", "", []byte("{not json"), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Uninitialized read (a read before the flow's first write of the
	// data): the access lint reports a Warning, which rejects with 422
	// and the analysis report as the body — the same report rio-vet
	// would print for the same flow.
	bad := []byte(`{"name":"bad","num_data":1,"tasks":[{"kernel":0,"accesses":[{"data":0,"mode":"R"}]},{"kernel":0,"accesses":[{"data":0,"mode":"W"}]}]}`)
	var report struct {
		Findings []struct {
			Code string `json:"code"`
		} `json:"findings"`
	}
	resp := do(t, "POST", hs.URL+"/v1/flows", "", bad, &report)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("uninit-read flow: status %d, want 422", resp.StatusCode)
	}
	if len(report.Findings) == 0 {
		t.Error("422 body carries no findings")
	}

	// A rejected flow is not registered: it must not shadow later
	// submissions or be runnable.
	if resp := do(t, "GET", hs.URL+"/v1/flows", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	p := progressOf(t, hs.URL, "")
	if p.Flows != 0 {
		t.Errorf("rejected flow stayed registered (flows = %d)", p.Flows)
	}

	if resp := do(t, "POST", hs.URL+"/v1/flows", "bad tenant!", graphJSON(t, graphs.Chain(2)), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad tenant name: status %d, want 400", resp.StatusCode)
	}
}

func TestRunErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	info := submitFlow(t, hs.URL, "", graphs.Chain(4))

	if resp := do(t, "POST", hs.URL+"/v1/flows/nope/run", "", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown flow: status %d, want 404", resp.StatusCode)
	}
	if resp := do(t, "POST", hs.URL+"/v1/flows/"+info.ID+"/run", "", []byte(`{"kernel":"warp"}`), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kernel: status %d, want 400", resp.StatusCode)
	}
	if resp := do(t, "GET", hs.URL+"/metrics", "ghost", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("metrics of unknown tenant: status %d, want 404", resp.StatusCode)
	}
}

func TestOneShotRunWithMapping(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	g := graphs.LU(3)
	envelope := map[string]any{
		"graph":   json.RawMessage(graphJSON(t, g)),
		"mapping": map[string]any{"spec": "blockcyclic:2"},
		"kernel":  "spin",
	}
	body, err := json.Marshal(envelope)
	if err != nil {
		t.Fatal(err)
	}
	var res runResult
	resp := do(t, "POST", hs.URL+"/v1/run", "", body, &res)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("one-shot run: status %d: %s", resp.StatusCode, raw)
	}
	if res.Executed != int64(len(g.Tasks)) {
		t.Errorf("executed %d tasks, want %d", res.Executed, len(g.Tasks))
	}
	if res.Kernel != "spin" {
		t.Errorf("kernel = %q, want spin", res.Kernel)
	}

	// The mapping is part of the flow identity: the same graph under the
	// default mapping is a different flow (and a second compile).
	var info flowInfo
	if resp := do(t, "POST", hs.URL+"/v1/flows", "", graphJSON(t, g), &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if info.Cached {
		t.Error("default-mapping flow aliased the blockcyclic one")
	}
	p := progressOf(t, hs.URL, "")
	if p.Flows != 2 || p.Cache.Misses != 2 {
		t.Errorf("flows/misses = %d/%d, want 2/2 (one compile per distinct mapping)", p.Flows, p.Cache.Misses)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	info := submitFlow(t, hs.URL, "", graphs.Chain(8))
	runFlow(t, hs.URL, "", info.ID, "noop")

	resp := do(t, "GET", hs.URL+"/metrics", "", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the Prometheus exposition type", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{"rio_run_running", "rio_tasks_executed_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

func TestFlowTableBound(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, MaxFlows: 2})
	for n := 2; n <= 3; n++ {
		code := do(t, "POST", hs.URL+"/v1/flows", "", graphJSON(t, graphs.Chain(n)), nil).StatusCode
		if code != http.StatusOK {
			t.Fatalf("chain(%d): status %d", n, code)
		}
	}
	if code := do(t, "POST", hs.URL+"/v1/flows", "", graphJSON(t, graphs.Chain(4)), nil).StatusCode; code != http.StatusInsufficientStorage {
		t.Errorf("third flow: status %d, want 507 at MaxFlows", code)
	}
}

func TestTenantTableBound(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, MaxTenants: 1})
	submitFlow(t, hs.URL, "solo", graphs.Chain(2))
	if code := do(t, "POST", hs.URL+"/v1/flows", "intruder", graphJSON(t, graphs.Chain(2)), nil).StatusCode; code != http.StatusServiceUnavailable {
		t.Errorf("second tenant: status %d, want 503 at MaxTenants", code)
	}
}
