// Package server is the rio-serve service: a long-running multi-tenant
// HTTP front end over the caching rio.Engine. Clients POST task flows in
// the JSON graph wire format (the form rio-graph writes and rio-vet
// vets), the server preflights them through internal/analyze, compiles
// each distinct (graph, mapping) once — certifying the streams when
// Config.Verify is set — and serves repeated executions from the
// compiled-program cache. This is the paper's compile-once/replay-many
// design turned into a serving workload: graph setup is amortized across
// every request that replays it.
//
// Layering (DESIGN.md §11): api (this package's handlers) → ingest
// (internal/server/ingest, the submission path shared with the CLI
// tools) → engine (one caching rio.Engine per tenant).
//
// Admission control: each tenant owns a bounded worker pool (its
// engine's Config.Workers threads), a bounded submission queue, and one
// executor goroutine that serializes runs on the engine (the engine's
// cache surface is concurrent-safe; runs are not). A full queue answers
// 429 with a Retry-After hint instead of queueing unboundedly; each
// execution is bounded by Config.Timeout (rio.Options.Timeout on the
// tenant engine); Drain stops admission with 503 and lets in-flight and
// queued work finish.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"regexp"
	"time"

	"rio"
	"rio/internal/analyze"
	"rio/internal/server/ingest"
)

// Config parameterizes a Server. The zero value serves with the
// defaults noted on each field.
type Config struct {
	// Workers is each tenant engine's worker-pool size (default 4).
	Workers int
	// QueueDepth bounds each tenant's submission queue; an execution
	// request arriving at a full queue is rejected with 429 and a
	// Retry-After hint rather than admitted (default 64).
	QueueDepth int
	// MaxTenants bounds the number of distinct tenants the server will
	// lazily create engines for; beyond it, requests naming a new tenant
	// get 503 (default 16).
	MaxTenants int
	// MaxFlows bounds the flows a tenant may keep registered; beyond it,
	// new submissions get 507 until the tenant's flows are deleted
	// (default 128).
	MaxFlows int
	// Timeout bounds each execution (rio.Options.Timeout on the tenant
	// engines): a run exceeding it is canceled and the request answers
	// 504 (default 30s; negative disables).
	Timeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Preflight selects the static-analysis passes run over every new
	// flow at submission; findings of Warning or worse reject it with
	// 422 and the analysis report as the body (default
	// access+mapping — the deterministic, cheap passes).
	Preflight analyze.Passes
	// Verify certifies compiled streams against their graph on every
	// cache miss (translation validation, rio.Options.Verify).
	Verify bool
	// Prune applies §3.5 task pruning when compiling (rio.Options.Prune).
	Prune bool
	// Kernels adds named kernels to (or overrides) the built-in registry
	// (noop, spin, sleep) that run requests select from.
	Kernels map[string]rio.Kernel
	// PublishExpvar publishes each tenant engine under the expvar name
	// "rio.<tenant>" (/debug/vars). Off by default: expvar names are
	// process-global and publishing twice panics, so only one Server per
	// process may enable it.
	PublishExpvar bool
	// Logf receives the server's log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 16
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = 128
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Timeout < 0 {
		cfg.Timeout = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Preflight == 0 {
		cfg.Preflight = analyze.PassAccess | analyze.PassMapping
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return cfg
}

// TenantHeader names the tenant a request acts for; absent means
// "default". Tenant names are lowercase [a-z0-9_-], at most 64 bytes.
const TenantHeader = "X-Rio-Tenant"

// DefaultTenant is the tenant of requests that send no TenantHeader.
const DefaultTenant = "default"

var tenantNameRE = regexp.MustCompile(`^[a-z0-9_-]{1,64}$`)

// Server is the rio-serve HTTP service. Create one with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	kernels map[string]rio.Kernel
	mux     *http.ServeMux

	reg *registry // tenant table + draining state + drain bookkeeping
}

// New builds a Server from cfg (zero fields take the documented
// defaults).
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		cfg:     c,
		kernels: builtinKernels(),
		mux:     http.NewServeMux(),
		reg:     newRegistry(c),
	}
	for name, k := range c.Kernels {
		s.kernels[name] = k
	}
	s.mux.HandleFunc("POST /v1/flows", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/flows", s.handleListFlows)
	s.mux.HandleFunc("GET /v1/flows/{id}", s.handleFlowInfo)
	s.mux.HandleFunc("POST /v1/flows/{id}/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/run", s.handleSubmitRun)
	s.mux.HandleFunc("GET /v1/progress", s.handleProgress)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the service's HTTP handler (the /v1 API plus /metrics
// and /healthz). Debug surfaces — pprof, expvar — are deliberately not
// on it; cmd/rio-serve mounts them on a separate mux so deployments can
// keep them off the client-facing listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the service down: new submissions and
// executions are rejected with 503 from the moment it is called, queued
// and in-flight executions run to completion, and Drain returns when the
// last one finished. If ctx expires first, the remaining executions are
// canceled (they unwind through the engines' cooperative cancellation)
// and Drain returns ctx's error after they do.
func (s *Server) Drain(ctx context.Context) error {
	return s.reg.drain(ctx)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.reg.draining.Load() }

// tenantFor resolves the request's tenant, lazily creating its engine.
// It writes the error response itself when it returns nil.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		name = DefaultTenant
	}
	if !tenantNameRE.MatchString(name) {
		writeErr(w, http.StatusBadRequest, "bad tenant name %q (want lowercase [a-z0-9_-], at most 64 bytes)", name)
		return nil
	}
	t, err := s.reg.tenant(name, s.cfg)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return nil
	}
	return t
}

// lookupTenant resolves the request's tenant without creating it (for
// read-only surfaces like /metrics).
func (s *Server) lookupTenant(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		name = DefaultTenant
	}
	t := s.reg.lookup(name)
	if t == nil {
		writeErr(w, http.StatusNotFound, "unknown tenant %q (tenants exist once they submit a flow)", name)
	}
	return t
}

// flowInfo is the JSON description of a registered flow.
type flowInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Tasks   int    `json:"tasks"`
	Data    int    `json:"data"`
	Mapping string `json:"mapping"`
	// Cached reports that the flow was already registered (the compiled
	// program was reused, not rebuilt).
	Cached bool `json:"cached"`
	// Verified reports that the compiled streams carry a translation-
	// validation certificate (Config.Verify).
	Verified bool `json:"verified"`
	// Runs counts completed executions of the flow.
	Runs int64 `json:"runs"`
	// Findings tallies the preflight report (informational findings do
	// not reject).
	Findings struct {
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
		Infos    int `json:"infos"`
	} `json:"findings"`
}

func (s *Server) flowInfo(f *flow, cached bool) flowInfo {
	info := flowInfo{
		ID:       f.id,
		Name:     f.sub.Graph.Name,
		Tasks:    len(f.sub.Graph.Tasks),
		Data:     f.sub.Graph.NumData,
		Mapping:  f.sub.MappingSpec.Canonical(),
		Cached:   cached,
		Verified: s.cfg.Verify,
		Runs:     f.runs.Load(),
	}
	if f.report != nil {
		info.Findings.Errors = f.report.Errors
		info.Findings.Warnings = f.report.Warnings
		info.Findings.Infos = f.report.Infos
	}
	return info
}

// handleSubmit is POST /v1/flows: parse, validate, preflight and compile
// one flow, registering it under its content hash.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	body := http.MaxBytesReader(w, r.Body, ingest.MaxBodyBytes)
	f, cached, err := s.submit(r.Context(), t, body)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.flowInfo(f, cached))
}

// submit runs the shared submission path: ingest.Parse, flow-level
// deduplication by content hash, and — for the first submitter of a new
// hash — preflight plus one compile (and certification) through the
// tenant engine's own singleflight. Concurrent submitters of the same
// bytes converge on one canonical flow and therefore on one *rio.Graph,
// which is what lets the engine's pointer-keyed cache record exactly one
// miss however many clients raced the first submission.
func (s *Server) submit(ctx context.Context, t *tenant, body io.Reader) (*flow, bool, error) {
	sub, err := ingest.Parse(body, s.cfg.Workers)
	if err != nil {
		return nil, false, err
	}
	f, winner, err := t.register(sub)
	if err != nil {
		return nil, false, err
	}
	if winner {
		f.report, f.err = ingest.Preflight(sub, s.cfg.Preflight)
		if f.err == nil {
			_, f.err = t.eng.Precompile(sub.Graph)
		}
		if f.err != nil {
			t.unregister(f)
		}
		close(f.ready)
	}
	select {
	case <-f.ready:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	if f.err != nil {
		return nil, false, f.err
	}
	return f, !winner, nil
}

// handleListFlows is GET /v1/flows.
func (s *Server) handleListFlows(w http.ResponseWriter, r *http.Request) {
	t := s.lookupTenant(w, r)
	if t == nil {
		return
	}
	flows := t.snapshot()
	infos := make([]flowInfo, 0, len(flows))
	for _, f := range flows {
		infos = append(infos, s.flowInfo(f, true))
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": t.name, "flows": infos})
}

// handleFlowInfo is GET /v1/flows/{id}.
func (s *Server) handleFlowInfo(w http.ResponseWriter, r *http.Request) {
	t := s.lookupTenant(w, r)
	if t == nil {
		return
	}
	f := t.lookup(r.PathValue("id"))
	if f == nil {
		writeErr(w, http.StatusNotFound, "unknown flow %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.flowInfo(f, true))
}

// runRequest is the optional body of POST /v1/flows/{id}/run and the
// kernel half of POST /v1/run.
type runRequest struct {
	// Kernel names the task body to replay the flow with: one of the
	// built-in kernels (noop, spin, sleep) or a Config.Kernels entry.
	// Empty means noop — the pure synchronization skeleton.
	Kernel string `json:"kernel,omitempty"`
}

// runResult is the JSON response of an execution.
type runResult struct {
	Flow   string `json:"flow"`
	Kernel string `json:"kernel"`
	// Executed is the number of tasks the run executed.
	Executed int64 `json:"executed"`
	// WallNS is the execution's wall time; QueueNS the time the request
	// spent queued behind other executions.
	WallNS  int64 `json:"wall_ns"`
	QueueNS int64 `json:"queue_ns"`
}

// handleRun is POST /v1/flows/{id}/run: admission-controlled execution
// of a registered flow.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	f := t.lookup(r.PathValue("id"))
	if f == nil {
		writeErr(w, http.StatusNotFound, "unknown flow %q", r.PathValue("id"))
		return
	}
	s.execute(w, r, t, f, r.Body)
}

// handleSubmitRun is POST /v1/run: submit and execute in one request
// (the body is the submit envelope, optionally carrying a kernel field).
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, ingest.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	f, _, err := s.submit(r.Context(), t, bytes.NewReader(body))
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	s.execute(w, r, t, f, bytes.NewReader(body))
}

// execute resolves the kernel, admits the request into the tenant's
// bounded queue (or answers 429), waits for the executor and writes the
// result.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, t *tenant, f *flow, body io.Reader) {
	var rr runRequest
	if err := decodeOptionalJSON(body, &rr); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding run request: %v", err)
		return
	}
	if rr.Kernel == "" {
		rr.Kernel = "noop"
	}
	k, ok := s.kernels[rr.Kernel]
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown kernel %q", rr.Kernel)
		return
	}
	req := &execReq{
		flow:   f,
		kernel: k,
		name:   rr.Kernel,
		ctx:    r.Context(),
		queued: time.Now(),
		done:   make(chan execResult, 1),
	}
	if !t.admit(req) {
		// admit refuses for two reasons: a drain raced past the
		// handler-entry check (503, like every other draining reject)
		// or the queue is full (the 429 backpressure path).
		if s.rejectDraining(w) {
			return
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
		writeErr(w, http.StatusTooManyRequests,
			"tenant %q submission queue is full (%d pending); retry later", t.name, cap(t.queue))
		return
	}
	select {
	case res := <-req.done:
		if res.err != nil {
			switch {
			case errors.Is(res.err, context.DeadlineExceeded):
				writeErr(w, http.StatusGatewayTimeout, "execution exceeded the %v request timeout: %v", s.cfg.Timeout, res.err)
			case errors.Is(res.err, context.Canceled):
				writeErr(w, http.StatusServiceUnavailable, "execution canceled: %v", res.err)
			default:
				writeErr(w, http.StatusInternalServerError, "execution failed: %v", res.err)
			}
			return
		}
		writeJSON(w, http.StatusOK, runResult{
			Flow:     f.id,
			Kernel:   rr.Kernel,
			Executed: res.executed,
			WallNS:   int64(res.wall),
			QueueNS:  int64(res.queueWait),
		})
	case <-r.Context().Done():
		// Client gone; the executor will observe the dead context and
		// skip or cancel the run. Nothing useful can be written.
	}
}

// progressInfo is the JSON response of GET /v1/progress: the engine's
// always-on counters plus the admission and cache state that frames them.
type progressInfo struct {
	Tenant   string `json:"tenant"`
	Draining bool   `json:"draining"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	Flows    int    `json:"flows"`
	Cache    struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
	} `json:"cache"`
	Progress rio.Progress `json:"progress"`
}

// handleProgress is GET /v1/progress.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	t := s.lookupTenant(w, r)
	if t == nil {
		return
	}
	info := progressInfo{
		Tenant:   t.name,
		Draining: s.Draining(),
		QueueLen: len(t.queue),
		QueueCap: cap(t.queue),
		Flows:    len(t.snapshot()),
		Progress: t.eng.Progress(),
	}
	info.Cache.Hits, info.Cache.Misses, info.Cache.Entries = t.eng.CacheStats()
	writeJSON(w, http.StatusOK, info)
}

// handleMetrics is GET /metrics: the tenant engine's Prometheus text
// exposition (rio.MetricsHandler's format and error contract).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	t := s.lookupTenant(w, r)
	if t == nil {
		return
	}
	rio.MetricsHandler(t.eng).ServeHTTP(w, r)
}

// handleHealth is GET /healthz: 200 while serving, 503 once draining
// (load balancers stop routing to a draining instance).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining; no new work admitted")
		return true
	}
	return false
}

// writeSubmitErr maps submission-path errors to statuses: a preflight
// rejection is 422 with the full analysis report as the body (the same
// JSON rio-vet -json emits, so the rejection reproduces locally); any
// other parse/validation error is 400.
func writeSubmitErr(w http.ResponseWriter, err error) {
	var pf *analyze.PreflightError
	if errors.As(err, &pf) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		pf.Report.WriteJSON(w)
		return
	}
	var full *flowTableFullError
	if errors.As(err, &full) {
		writeErr(w, http.StatusInsufficientStorage, "%v", err)
		return
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	writeErr(w, http.StatusBadRequest, "%v", err)
}

// retryAfterSeconds rounds d up to whole seconds (Retry-After's unit),
// minimum 1.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// decodeOptionalJSON decodes one JSON value into v, accepting an empty
// body as the zero value and ignoring unknown fields (the one-shot run
// body doubles as the submit envelope).
func decodeOptionalJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
