package centralized_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rio/internal/centralized"
	"rio/internal/enginetest"
	"rio/internal/stf"
)

func TestReductionSumExact(t *testing.T) {
	const n = 500
	var sum int64
	var final int64
	e := newEngine(t, centralized.Options{Workers: 4})
	err := e.Run(1, func(s stf.Submitter) {
		for i := 1; i <= n; i++ {
			v := int64(i)
			s.Submit(func() { sum += v }, stf.Red(0))
		}
		s.Submit(func() { final = sum }, stf.R(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n + 1) / 2); final != want {
		t.Errorf("sum = %d, want %d (reduction bodies not serialized?)", final, want)
	}
}

func TestReductionRunsAreConcurrentlyDispatchable(t *testing.T) {
	// All reductions of a run become ready together (no internal edges);
	// with several workers the final sum must still be exact and reads
	// must see complete runs.
	const p = 4
	var acc int64
	var snaps []int64
	e := newEngine(t, centralized.Options{Workers: p, Scheduler: centralized.WorkStealing})
	err := e.Run(1, func(s stf.Submitter) {
		for block := 0; block < 8; block++ {
			for i := 0; i < 9; i++ {
				s.Submit(func() { acc++ }, stf.Red(0))
			}
			s.Submit(func() { snaps = append(snaps, acc) }, stf.RW(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range snaps {
		if want := int64(9 * (i + 1)); v != want {
			t.Errorf("snapshot %d = %d, want %d", i, v, want)
		}
	}
}

func TestMultiReductionNoDeadlock(t *testing.T) {
	const n = 200
	var a, b int64
	var finalA, finalB int64
	e := newEngine(t, centralized.Options{Workers: 4})
	err := e.Run(2, func(s stf.Submitter) {
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				s.Submit(func() { a++; b++ }, stf.Red(0), stf.Red(1))
			} else {
				s.Submit(func() { b++; a++ }, stf.Red(1), stf.Red(0))
			}
		}
		s.Submit(func() { finalA, finalB = a, b }, stf.R(0), stf.R(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalA != n || finalB != n {
		t.Errorf("a=%d b=%d, want %d each", finalA, finalB, n)
	}
}

func TestPropertyReductionGraphsSequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraphWithReductions(rng, 50, 8)
		p := 2 + rng.Intn(3)
		kind := centralized.FIFO
		if rng.Intn(2) == 1 {
			kind = centralized.WorkStealing
		}
		e, err := centralized.New(centralized.Options{Workers: p, Scheduler: kind})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
