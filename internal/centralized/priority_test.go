package centralized_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rio/internal/centralized"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestPrioritySchedulerCorrectness(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.Independent(200),
		graphs.RandomDeps(300, 16, 2, 1, 42),
		graphs.LU(5),
		graphs.TreeReduce(32),
		graphs.ForkJoin(5, 8),
		graphs.Wavefront(6, 6),
	} {
		for _, p := range []int{2, 4} {
			e := newEngine(t, centralized.Options{Workers: p, Scheduler: centralized.Priority})
			if err := enginetest.Check(e, g); err != nil {
				t.Errorf("%s p=%d prio: %v", g.Name, p, err)
			}
		}
	}
}

func TestPriorityName(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 2, Scheduler: centralized.Priority})
	if e.Name() != "centralized-prio" {
		t.Errorf("Name() = %q", e.Name())
	}
}

func TestPriorityPrefersDeeperTasks(t *testing.T) {
	// Two source tasks become ready together: one is the head of a long
	// chain (deep successors), one is isolated. After both sources run,
	// every chain element outranks nothing else — instead check directly
	// that ready tasks at different levels dequeue deepest first: build a
	// diamond where the join (level 2) and an isolated source (level 0)
	// are ready simultaneously, with a single executor.
	g := stf.NewGraph("prio-order", 3)
	g.Add(0, 0, 0, 0, stf.W(0))           // 0: source, level 0
	g.Add(0, 1, 0, 0, stf.R(0), stf.W(1)) // 1: level 1
	g.Add(0, 2, 0, 0, stf.R(1), stf.W(2)) // 2: level 2
	g.Add(0, 3, 0, 0)                     // 3: isolated, level 0

	// With one executor, once tasks 2 (level 2) and 3 (level 0) are both
	// in the queue, 2 must come out first.
	e := newEngine(t, centralized.Options{Workers: 2, Scheduler: centralized.Priority})
	tr, err := enginetest.Run(e, g)
	if err != nil {
		t.Fatal(err)
	}
	// All tasks ran exactly once and in a dependency-respecting order;
	// the deep chain should complete before the isolated task with a
	// single executor (3 is only preferred if nothing deeper is ready).
	order := tr.Order()
	pos := map[stf.TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[2] > pos[3] && pos[1] > pos[3] {
		t.Errorf("priority scheduler ran the isolated task before the whole chain: order %v", order)
	}
}

func TestPropertyPrioritySequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraphWithReductions(rng, 50, 8)
		p := 2 + rng.Intn(3)
		e, err := centralized.New(centralized.Options{Workers: p, Scheduler: centralized.Priority})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
