package centralized

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"rio/internal/stf"
)

// scheduler moves ready tasks from the master to the executing workers.
// push never blocks; pop blocks until a task is available or the scheduler
// is closed (then it returns nil). pop additionally returns the time the
// worker spent blocked, which the engine accounts as idle time.
type scheduler interface {
	push(t *task)
	pop(w int) (*task, time.Duration)
	close()
}

// waitTuning is the centralized counterpart of the in-order engine's
// dependency-wait escalation, applied to the executors' ready-queue pops:
// how long a pop busy-polls the ready state before parking on the
// scheduler's condition variable. The policies map as follows — WaitSpin
// never parks (Gosched-poll until a task or close), WaitAdaptive spins for
// the budget then parks (no feedback loop here: queue pops have no per-data
// histogram to feed from), WaitPark and WaitSleep park immediately (parking
// *is* the legacy centralized behavior; there is no sleep ladder to fall
// back to).
type waitTuning struct {
	policy stf.WaitPolicy
	spin   int
}

// budget returns the number of spin-phase probes before parking, or -1 for
// spin-forever.
func (wt waitTuning) budget() int {
	switch wt.policy {
	case stf.WaitSpin:
		return -1
	case stf.WaitAdaptive:
		return wt.spin
	}
	return 0 // WaitPark, WaitSleep: park immediately
}

// spinPop busy-polls readyOrClosed (with Gosched between probes) for the
// tuning's budget — or until it holds, under WaitSpin. It reports whether
// the probe held during the spin phase and the time spent spinning.
// readyOrClosed must be a cheap, possibly stale probe that also turns true
// when the scheduler closes — that is what keeps a WaitSpin waiter live
// across shutdown; the caller re-checks authoritatively under its lock.
func (wt waitTuning) spinPop(readyOrClosed func() bool) (hit bool, idle time.Duration) {
	n := wt.budget()
	if n == 0 {
		return false, 0
	}
	t0 := time.Now()
	for i := 0; n < 0 || i < n; i++ {
		if readyOrClosed() {
			return true, time.Since(t0)
		}
		runtime.Gosched()
	}
	return false, time.Since(t0)
}

// SchedulerKind selects the dispatch strategy of the centralized engine.
type SchedulerKind int

const (
	// FIFO uses a single shared queue: ready tasks are executed in the
	// order they became ready, by whichever worker is free ("eager"
	// dispatch, StarPU's historical default).
	FIFO SchedulerKind = iota
	// WorkStealing gives each worker its own deque; tasks are pushed to
	// the hinted worker (or round-robin) and idle workers steal from the
	// back of other workers' deques ("lws"-style dispatch).
	WorkStealing
	// Priority dispatches ready tasks deepest-dependency-level first — a
	// cheap online critical-path heuristic ("prio"-style dispatch).
	Priority
)

// String returns the scheduler's short name.
func (k SchedulerKind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case WorkStealing:
		return "ws"
	case Priority:
		return "prio"
	}
	return "unknown"
}

// fifoQueue is the single-queue scheduler. avail and done shadow the
// mutex-guarded state with atomics so that spin-phase probes (see
// waitTuning) need not touch the lock pushers hold.
type fifoQueue struct {
	wt       waitTuning
	avail    atomic.Int64
	done     atomic.Bool
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []*task // used as a ring-free FIFO: append at tail, pop at head
	head     int
	closed   bool
}

func newFIFO(wt waitTuning) *fifoQueue {
	q := &fifoQueue{wt: wt}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

func (q *fifoQueue) push(t *task) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.avail.Add(1)
	q.mu.Unlock()
	q.nonEmpty.Signal()
}

// take dequeues one task if available. done reports the queue closed and
// drained; (nil, false) means empty-but-open (caller spins or parks).
func (q *fifoQueue) take() (t *task, done bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return nil, q.closed
	}
	t = q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.avail.Add(-1)
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return t, false
}

func (q *fifoQueue) pop(int) (*task, time.Duration) {
	var idle time.Duration
	for {
		if t, done := q.take(); t != nil || done {
			return t, idle
		}
		hit, spun := q.wt.spinPop(func() bool { return q.avail.Load() > 0 || q.done.Load() })
		idle += spun
		if hit {
			continue // re-check authoritatively under the lock
		}
		q.mu.Lock()
		for q.head == len(q.items) && !q.closed {
			t0 := time.Now()
			q.nonEmpty.Wait()
			idle += time.Since(t0)
		}
		q.mu.Unlock()
	}
}

func (q *fifoQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.done.Store(true)
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// stealScheduler implements per-worker deques with work stealing. A worker
// pops from the front of its own deque (preserving submission order for
// hinted tasks) and steals from the back of a victim's deque. Parking uses
// a shared condition variable with a version counter so that a push between
// the failed scan and the wait cannot be lost.
type stealScheduler struct {
	wt     waitTuning
	deques []workerDeque
	done   atomic.Bool // shadows closed for lock-free spin probes

	mu      sync.Mutex
	wake    *sync.Cond
	version uint64
	closed  bool

	rr atomic.Uint64 // round-robin cursor for unhinted tasks
}

// cacheLine is the coherence granularity the deques are padded to.
const cacheLine = 64

type workerDeque struct {
	dequeCell
	// Keep deques on separate cache lines; the pad is computed so it
	// tracks the cell's layout.
	_ [(cacheLine - unsafe.Sizeof(dequeCell{})%cacheLine) % cacheLine]byte
}

type dequeCell struct {
	mu    sync.Mutex
	items []*task
	head  int
}

func newStealScheduler(workers int, wt waitTuning) *stealScheduler {
	s := &stealScheduler{wt: wt, deques: make([]workerDeque, workers)}
	s.wake = sync.NewCond(&s.mu)
	return s
}

func (s *stealScheduler) push(t *task) {
	w := t.hint
	if w < 0 || w >= len(s.deques) {
		// Both the master (at submission) and executors (releasing
		// successors) push, so the cursor must be atomic.
		w = int((s.rr.Add(1) - 1) % uint64(len(s.deques)))
	}
	d := &s.deques[w]
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()

	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.wake.Broadcast()
}

// popOwn removes the oldest task of w's own deque.
func (d *workerDeque) popOwn() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.items) {
		return nil
	}
	t := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	}
	return t
}

// steal removes the newest task of a victim deque.
func (d *workerDeque) steal() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if d.head == n {
		return nil
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	}
	return t
}

// scan tries w's own deque, then every victim, without blocking.
func (s *stealScheduler) scan(w int) *task {
	if t := s.deques[w].popOwn(); t != nil {
		return t
	}
	for i := 1; i < len(s.deques); i++ {
		if t := s.deques[(w+i)%len(s.deques)].steal(); t != nil {
			return t
		}
	}
	return nil
}

func (s *stealScheduler) pop(w int) (*task, time.Duration) {
	var idle time.Duration
	for {
		if t := s.scan(w); t != nil {
			return t, idle
		}
		// Spin phase per waitTuning: rescan (the scan itself is the ready
		// probe here — deque locks are sharded, so probing them does not
		// serialize the pushers) before parking.
		if n := s.wt.budget(); n != 0 {
			t0 := time.Now()
			for i := 0; n < 0 || i < n; i++ {
				runtime.Gosched()
				if t := s.scan(w); t != nil {
					return t, idle + time.Since(t0)
				}
				if s.done.Load() {
					break
				}
			}
			idle += time.Since(t0)
		}
		// Nothing found: park until a push or close changes the world.
		s.mu.Lock()
		v := s.version
		if s.closed {
			s.mu.Unlock()
			return nil, idle
		}
		t0 := time.Now()
		for s.version == v && !s.closed {
			s.wake.Wait()
		}
		idle += time.Since(t0)
		s.mu.Unlock()
	}
}

func (s *stealScheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.done.Store(true)
	s.mu.Unlock()
	s.wake.Broadcast()
}
