package centralized

import (
	"sync"
	"sync/atomic"
	"time"
)

// scheduler moves ready tasks from the master to the executing workers.
// push never blocks; pop blocks until a task is available or the scheduler
// is closed (then it returns nil). pop additionally returns the time the
// worker spent blocked, which the engine accounts as idle time.
type scheduler interface {
	push(t *task)
	pop(w int) (*task, time.Duration)
	close()
}

// SchedulerKind selects the dispatch strategy of the centralized engine.
type SchedulerKind int

const (
	// FIFO uses a single shared queue: ready tasks are executed in the
	// order they became ready, by whichever worker is free ("eager"
	// dispatch, StarPU's historical default).
	FIFO SchedulerKind = iota
	// WorkStealing gives each worker its own deque; tasks are pushed to
	// the hinted worker (or round-robin) and idle workers steal from the
	// back of other workers' deques ("lws"-style dispatch).
	WorkStealing
	// Priority dispatches ready tasks deepest-dependency-level first — a
	// cheap online critical-path heuristic ("prio"-style dispatch).
	Priority
)

// String returns the scheduler's short name.
func (k SchedulerKind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case WorkStealing:
		return "ws"
	case Priority:
		return "prio"
	}
	return "unknown"
}

// fifoQueue is the single-queue scheduler.
type fifoQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []*task // used as a ring-free FIFO: append at tail, pop at head
	head     int
	closed   bool
}

func newFIFO() *fifoQueue {
	q := &fifoQueue{}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

func (q *fifoQueue) push(t *task) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.mu.Unlock()
	q.nonEmpty.Signal()
}

func (q *fifoQueue) pop(int) (*task, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var idle time.Duration
	for q.head == len(q.items) && !q.closed {
		t0 := time.Now()
		q.nonEmpty.Wait()
		idle += time.Since(t0)
	}
	if q.head == len(q.items) {
		return nil, idle
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return t, idle
}

func (q *fifoQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// stealScheduler implements per-worker deques with work stealing. A worker
// pops from the front of its own deque (preserving submission order for
// hinted tasks) and steals from the back of a victim's deque. Parking uses
// a shared condition variable with a version counter so that a push between
// the failed scan and the wait cannot be lost.
type stealScheduler struct {
	deques []workerDeque

	mu      sync.Mutex
	wake    *sync.Cond
	version uint64
	closed  bool

	rr atomic.Uint64 // round-robin cursor for unhinted tasks
}

type workerDeque struct {
	mu    sync.Mutex
	items []*task
	head  int
	_     [40]byte // keep deques on separate cache lines
}

func newStealScheduler(workers int) *stealScheduler {
	s := &stealScheduler{deques: make([]workerDeque, workers)}
	s.wake = sync.NewCond(&s.mu)
	return s
}

func (s *stealScheduler) push(t *task) {
	w := t.hint
	if w < 0 || w >= len(s.deques) {
		// Both the master (at submission) and executors (releasing
		// successors) push, so the cursor must be atomic.
		w = int((s.rr.Add(1) - 1) % uint64(len(s.deques)))
	}
	d := &s.deques[w]
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()

	s.mu.Lock()
	s.version++
	s.mu.Unlock()
	s.wake.Broadcast()
}

// popOwn removes the oldest task of w's own deque.
func (d *workerDeque) popOwn() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.items) {
		return nil
	}
	t := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	}
	return t
}

// steal removes the newest task of a victim deque.
func (d *workerDeque) steal() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if d.head == n {
		return nil
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	}
	return t
}

func (s *stealScheduler) pop(w int) (*task, time.Duration) {
	var idle time.Duration
	for {
		if t := s.deques[w].popOwn(); t != nil {
			return t, idle
		}
		for i := 1; i < len(s.deques); i++ {
			if t := s.deques[(w+i)%len(s.deques)].steal(); t != nil {
				return t, idle
			}
		}
		// Nothing found: park until a push or close changes the world.
		s.mu.Lock()
		v := s.version
		if s.closed {
			s.mu.Unlock()
			return nil, idle
		}
		t0 := time.Now()
		for s.version == v && !s.closed {
			s.wake.Wait()
		}
		idle += time.Since(t0)
		s.mu.Unlock()
	}
}

func (s *stealScheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wake.Broadcast()
}
