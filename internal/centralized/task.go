// Package centralized implements the baseline execution model the paper
// compares against (§2.2): a *centralized, out-of-order* STF runtime in the
// style of StarPU, OmpSs or OpenMP tasking. A master thread unrolls the
// task flow, derives dependencies from access modes, and dispatches ready
// tasks to a pool of workers through queues; workers may pick tasks in any
// dependency-respecting order (out-of-order execution), optionally with
// work stealing.
//
// The structural costs of this model are the ones the paper attributes the
// fine-granularity collapse to: one task object allocated and tracked per
// task, centralized consistency management on the master, and queue traffic
// between master and workers (cost model eq. (1): t_p = max(n·t_r, n·t_t/w)
// — the master becomes the bottleneck when tasks get small).
package centralized

import (
	"sync"
	"sync/atomic"

	"rio/internal/stf"
)

// task is the runtime representation of one submitted task. Unlike the
// decentralized engine — which stores nothing per task — the centralized
// model must materialize every task until it has executed.
type task struct {
	id stf.TaskID

	// Exactly one of fn / (rec, kern) is set.
	fn   stf.TaskFunc
	rec  *stf.Task
	kern stf.Kernel

	// hint is the preferred worker queue (locality hint), or -1.
	hint int

	// reds lists the data objects this task accesses in Reduction mode,
	// sorted ascending; the executing worker takes the corresponding
	// per-data mutexes around the task body (commuting reductions run in
	// any order but must not overlap).
	reds []stf.DataID

	// accs is the full declared access list, retained only when a retry
	// policy is installed (the attempt loop snapshots the write-set from
	// it); nil otherwise to keep the per-task footprint unchanged.
	accs []stf.Access

	// pending counts unresolved predecessors plus one submission guard;
	// the task becomes ready when it reaches zero.
	pending atomic.Int32

	// level is the task's dependency depth (0 for source tasks), set by
	// the master during wiring; the priority scheduler dispatches deeper
	// tasks first.
	level int32

	mu    sync.Mutex
	done  bool
	succs []*task
}

// run executes the task body on worker w.
func (t *task) run(w stf.WorkerID) {
	if t.rec != nil {
		t.kern(t.rec, w)
		return
	}
	t.fn()
}

// addSuccessor registers s as depending on t. It returns false when t has
// already completed, in which case the dependency is already satisfied and
// must not be counted. The per-task lock closes the race between the master
// deriving dependencies and a worker completing t concurrently.
func (t *task) addSuccessor(s *task) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return false
	}
	t.succs = append(t.succs, s)
	return true
}

// complete marks t done and returns the successors to release.
func (t *task) complete() []*task {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	s := t.succs
	t.succs = nil
	return s
}

// depState is the master's per-data dependency-derivation state: the last
// task that wrote the data, the readers that accessed it since, and the
// open/closed commutative-reduction runs. This is the centralized
// counterpart of RIO's distributed counters; only the master touches it, so
// no synchronization is needed here — the point is that *all* tasks must
// flow through this single thread.
type depState struct {
	lastWriter *task
	readers    []*task
	openRun    []*task
	closedRun  []*task
}

// wire registers the predecessor edges of t implied by its accesses,
// updating the per-data state and t's pending count. The rules mirror
// stf.(*Graph).Dependencies including the reduction-run semantics.
//
// Ordering matters: the pending count is incremented *before* the edge is
// registered, so a predecessor completing concurrently (and decrementing
// pending through the just-registered edge) can never observe a count that
// is missing its own increment — otherwise the submission guard alone
// could hit zero and the task would be dispatched twice.
func wire(states []depState, t *task, accesses []stf.Access) {
	dep := func(p *task) {
		if p.level+1 > t.level {
			t.level = p.level + 1
		}
		t.pending.Add(1)
		if !p.addSuccessor(t) {
			// The predecessor had already completed; the dependency
			// is satisfied and the provisional increment comes back.
			t.pending.Add(-1)
		}
	}
	depAll := func(ps []*task) {
		for _, p := range ps {
			dep(p)
		}
	}
	for _, a := range accesses {
		st := &states[a.Data]
		switch {
		case a.Mode.Writes():
			if len(st.readers)+len(st.openRun) > 0 {
				depAll(st.readers)
				depAll(st.openRun)
			} else if st.lastWriter != nil {
				dep(st.lastWriter)
			}
			st.lastWriter = t
			st.readers = st.readers[:0]
			st.openRun = nil
			st.closedRun = nil
		case a.Mode.Commutes():
			if len(st.readers) > 0 {
				depAll(st.readers)
			} else if st.lastWriter != nil {
				dep(st.lastWriter)
			}
			st.openRun = append(st.openRun, t)
		default: // read
			switch {
			case len(st.openRun) > 0:
				depAll(st.openRun)
			case len(st.closedRun) > 0:
				depAll(st.closedRun)
			case st.lastWriter != nil:
				dep(st.lastWriter)
			}
			if len(st.openRun) > 0 {
				st.closedRun = st.openRun
				st.openRun = nil
			}
			st.readers = append(st.readers, t)
		}
	}
}
