package centralized_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"rio/internal/centralized"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func newEngine(t testing.TB, o centralized.Options) *centralized.Engine {
	t.Helper()
	e, err := centralized.New(o)
	if err != nil {
		t.Fatalf("centralized.New: %v", err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := centralized.New(centralized.Options{Workers: 1}); err == nil {
		t.Error("Workers=1 accepted (no executor would exist)")
	}
	if _, err := centralized.New(centralized.Options{Workers: 2, Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestEngineMetadata(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 4})
	if e.Name() != "centralized-fifo" {
		t.Errorf("Name() = %q", e.Name())
	}
	ws := newEngine(t, centralized.Options{Workers: 4, Scheduler: centralized.WorkStealing})
	if ws.Name() != "centralized-ws" {
		t.Errorf("Name() = %q", ws.Name())
	}
	if e.NumWorkers() != 4 {
		t.Errorf("NumWorkers() = %d", e.NumWorkers())
	}
}

func TestSequentialConsistencyMatrix(t *testing.T) {
	workloads := []struct {
		name string
		g    *stf.Graph
	}{
		{"independent", graphs.Independent(200)},
		{"random-deps", graphs.RandomDeps(300, 16, 2, 1, 42)},
		{"gemm-4", graphs.GEMM(4)},
		{"lu-5", graphs.LU(5)},
		{"cholesky-5", graphs.Cholesky(5)},
		{"wavefront-6x6", graphs.Wavefront(6, 6)},
	}
	for _, wl := range workloads {
		for _, p := range []int{2, 3, 5} {
			for _, kind := range []centralized.SchedulerKind{centralized.FIFO, centralized.WorkStealing} {
				e := newEngine(t, centralized.Options{Workers: p, Scheduler: kind})
				if err := enginetest.Check(e, wl.g); err != nil {
					t.Errorf("%s p=%d sched=%s: %v", wl.name, p, kind, err)
				}
			}
		}
	}
}

func TestSubmissionWindow(t *testing.T) {
	g := graphs.RandomDeps(400, 16, 2, 1, 11)
	for _, window := range []int{1, 2, 8, 64} {
		e := newEngine(t, centralized.Options{Workers: 3, Window: window})
		if err := enginetest.Check(e, g); err != nil {
			t.Errorf("window=%d: %v", window, err)
		}
	}
}

func TestWorkStealingWithHint(t *testing.T) {
	g := graphs.LU(6)
	p := 4
	// Hint on executor IDs 0..p-2.
	hint := func(id stf.TaskID) stf.WorkerID { return stf.WorkerID(id % stf.TaskID(p-1)) }
	e := newEngine(t, centralized.Options{Workers: p, Scheduler: centralized.WorkStealing, Hint: hint})
	if err := enginetest.Check(e, g); err != nil {
		t.Error(err)
	}
}

func TestHintOutOfRangeTolerated(t *testing.T) {
	// Hints are non-binding locality advice: out-of-range values fall
	// back to round-robin rather than failing the run.
	g := graphs.Independent(50)
	e := newEngine(t, centralized.Options{
		Workers:   3,
		Scheduler: centralized.WorkStealing,
		Hint:      func(stf.TaskID) stf.WorkerID { return 99 },
	})
	if err := enginetest.Check(e, g); err != nil {
		t.Error(err)
	}
}

func TestMasterExecutesNoTasks(t *testing.T) {
	g := graphs.Independent(100)
	e := newEngine(t, centralized.Options{Workers: 3})
	if _, err := enginetest.Run(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Workers[0].Executed != 0 {
		t.Errorf("master executed %d tasks", st.Workers[0].Executed)
	}
	if st.Executed() != 100 {
		t.Errorf("total executed = %d, want 100", st.Executed())
	}
}

func TestClosureSubmitPath(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 3})
	var sum atomic.Int64
	err := e.Run(1, func(s stf.Submitter) {
		if s.Worker() != stf.MasterWorker {
			t.Errorf("master reports worker %d", s.Worker())
		}
		if s.NumWorkers() != 3 {
			t.Errorf("NumWorkers = %d", s.NumWorkers())
		}
		for i := 1; i <= 10; i++ {
			v := int64(i)
			s.Submit(func() { sum.Add(v) }, stf.RW(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 55 {
		t.Errorf("sum = %d, want 55", sum.Load())
	}
}

func TestOutOfOrderActuallyPossible(t *testing.T) {
	// Two independent chains: the OoO engine may interleave them in any
	// order; the oracle only requires per-chain order. This mainly guards
	// against accidentally serializing everything.
	g := stf.NewGraph("2chains", 2)
	for i := 0; i < 40; i++ {
		g.Add(0, i, 0, 0, stf.RW(stf.DataID(i%2)))
	}
	e := newEngine(t, centralized.Options{Workers: 3})
	if err := enginetest.Check(e, g); err != nil {
		t.Error(err)
	}
}

func TestTaskIDRegressionReported(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 2})
	tasks := []stf.Task{{ID: 0}, {ID: 0}}
	err := e.Run(0, func(s stf.Submitter) {
		s.SubmitTask(&tasks[0], func(*stf.Task, stf.WorkerID) {})
		s.SubmitTask(&tasks[1], func(*stf.Task, stf.WorkerID) {})
	})
	if err == nil {
		t.Error("task ID regression not reported")
	}
}

func TestEngineReusable(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 3})
	g := graphs.GEMM(3)
	for run := 0; run < 3; run++ {
		if err := enginetest.Check(e, g); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 2})
	if err := e.Run(3, func(stf.Submitter) {}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDecompositionSane(t *testing.T) {
	g := graphs.LU(6)
	e := newEngine(t, centralized.Options{Workers: 3})
	if _, err := enginetest.Run(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if len(st.Workers) != 3 {
		t.Fatalf("stats report %d workers, want 3 (master included)", len(st.Workers))
	}
	task, idle, rt := st.Cumulative()
	if task < 0 || idle < 0 || rt < 0 {
		t.Errorf("negative component: %v %v %v", task, idle, rt)
	}
	if st.Workers[0].Task != 0 {
		t.Errorf("master has task time %v", st.Workers[0].Task)
	}
}

func TestPropertySequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 60, 10)
		p := 2 + rng.Intn(4)
		kind := centralized.FIFO
		if rng.Intn(2) == 1 {
			kind = centralized.WorkStealing
		}
		window := 0
		if rng.Intn(2) == 1 {
			window = 1 + rng.Intn(16)
		}
		e, err := centralized.New(centralized.Options{Workers: p, Scheduler: kind, Window: window})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Cross-engine agreement: both execution models must produce the identical
// final state on the same pruned-oracle workloads (this is the paper's
// claim that the execution model is interchangeable under the programming
// model's semantics).
func TestAgreesWithDecentralizedEngine(t *testing.T) {
	g := graphs.RandomDeps(400, 24, 2, 1, 99)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, centralized.Options{Workers: 4})
	got, err := enginetest.Run(e, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Compare(g, want, got); err != nil {
		t.Error(err)
	}
}

// Regression test for a dispatch race: when a task declares many accesses,
// the master spends a long time wiring predecessor edges; predecessors
// completing during that window used to drive the pending count to zero
// prematurely and dispatch (hence execute) the task twice. Wide fan-in
// tasks over hot data maximize the window.
func TestNoDoubleDispatchUnderWideFanIn(t *testing.T) {
	const rounds = 40
	const width = 24
	g := stf.NewGraph("fanin", width)
	for r := 0; r < rounds; r++ {
		for d := 0; d < width; d++ {
			g.Add(0, r, d, 0, stf.RW(stf.DataID(d)))
		}
		// One task reading all data objects: width predecessor edges
		// wired while those predecessors are completing.
		accesses := make([]stf.Access, 0, width)
		for d := 0; d < width; d++ {
			accesses = append(accesses, stf.R(stf.DataID(d)))
		}
		g.Add(0, r, -1, 0, accesses...)
	}
	for rep := 0; rep < 20; rep++ {
		e := newEngine(t, centralized.Options{Workers: 4})
		var ran atomic.Int64
		if err := e.Run(g.NumData, stf.Replay(g, func(*stf.Task, stf.WorkerID) { ran.Add(1) })); err != nil {
			t.Fatal(err)
		}
		if got, want := ran.Load(), int64(len(g.Tasks)); got != want {
			t.Fatalf("rep %d: %d executions of %d tasks (double dispatch!)", rep, got, want)
		}
		if got := e.Stats().Executed(); got != int64(len(g.Tasks)) {
			t.Fatalf("rep %d: stats report %d executions", rep, got)
		}
	}
}

func TestMappingHonoredAsHistogramHint(t *testing.T) {
	// With work stealing disabled effects can't be asserted strictly, but
	// hinted pushes must at least not lose tasks.
	g := graphs.Independent(500)
	hist := sched.Histogram(g, sched.Cyclic(3), 3)
	if hist[0]+hist[1]+hist[2] != 500 {
		t.Fatalf("histogram lost tasks: %v", hist)
	}
	e := newEngine(t, centralized.Options{Workers: 4, Scheduler: centralized.WorkStealing, Hint: sched.Cyclic(3)})
	if err := enginetest.Check(e, g); err != nil {
		t.Error(err)
	}
}
