package centralized

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// prioScheduler dispatches ready tasks deepest-dependency-level first (FIFO
// among equals): a cheap online approximation of critical-path scheduling —
// the kind of "good (hence expensive) heuristics" the paper attributes the
// centralized model's scheduling quality (and cost) to (§3.1). The master
// assigns each task its level (1 + max over predecessors) during
// dependency derivation.
type prioScheduler struct {
	wt       waitTuning
	avail    atomic.Int64 // shadows heap size for lock-free spin probes
	done     atomic.Bool  // shadows closed likewise
	mu       sync.Mutex
	nonEmpty *sync.Cond
	heap     prioHeap
	seq      uint64
	closed   bool
}

func newPrioScheduler(wt waitTuning) *prioScheduler {
	s := &prioScheduler{wt: wt}
	s.nonEmpty = sync.NewCond(&s.mu)
	return s
}

func (s *prioScheduler) push(t *task) {
	s.mu.Lock()
	s.seq++
	heap.Push(&s.heap, prioItem{t: t, seq: s.seq})
	s.avail.Add(1)
	s.mu.Unlock()
	s.nonEmpty.Signal()
}

// take pops the top task if available. done reports the scheduler closed
// and drained; (nil, false) means empty-but-open.
func (s *prioScheduler) take() (t *task, done bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.heap.Len() == 0 {
		return nil, s.closed
	}
	s.avail.Add(-1)
	return heap.Pop(&s.heap).(prioItem).t, false
}

func (s *prioScheduler) pop(int) (*task, time.Duration) {
	var idle time.Duration
	for {
		if t, done := s.take(); t != nil || done {
			return t, idle
		}
		hit, spun := s.wt.spinPop(func() bool { return s.avail.Load() > 0 || s.done.Load() })
		idle += spun
		if hit {
			continue // re-check authoritatively under the lock
		}
		s.mu.Lock()
		for s.heap.Len() == 0 && !s.closed {
			t0 := time.Now()
			s.nonEmpty.Wait()
			idle += time.Since(t0)
		}
		s.mu.Unlock()
	}
}

func (s *prioScheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.done.Store(true)
	s.mu.Unlock()
	s.nonEmpty.Broadcast()
}

type prioItem struct {
	t   *task
	seq uint64
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }

func (h prioHeap) Less(i, j int) bool {
	if h[i].t.level != h[j].t.level {
		return h[i].t.level > h[j].t.level // deeper level first
	}
	return h[i].seq < h[j].seq // FIFO among equals
}

func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *prioHeap) Push(x any) { *h = append(*h, x.(prioItem)) }

func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = prioItem{}
	*h = old[:n-1]
	return it
}
