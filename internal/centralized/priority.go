package centralized

import (
	"container/heap"
	"sync"
	"time"
)

// prioScheduler dispatches ready tasks deepest-dependency-level first (FIFO
// among equals): a cheap online approximation of critical-path scheduling —
// the kind of "good (hence expensive) heuristics" the paper attributes the
// centralized model's scheduling quality (and cost) to (§3.1). The master
// assigns each task its level (1 + max over predecessors) during
// dependency derivation.
type prioScheduler struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	heap     prioHeap
	seq      uint64
	closed   bool
}

func newPrioScheduler() *prioScheduler {
	s := &prioScheduler{}
	s.nonEmpty = sync.NewCond(&s.mu)
	return s
}

func (s *prioScheduler) push(t *task) {
	s.mu.Lock()
	s.seq++
	heap.Push(&s.heap, prioItem{t: t, seq: s.seq})
	s.mu.Unlock()
	s.nonEmpty.Signal()
}

func (s *prioScheduler) pop(int) (*task, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var idle time.Duration
	for s.heap.Len() == 0 && !s.closed {
		t0 := time.Now()
		s.nonEmpty.Wait()
		idle += time.Since(t0)
	}
	if s.heap.Len() == 0 {
		return nil, idle
	}
	return heap.Pop(&s.heap).(prioItem).t, idle
}

func (s *prioScheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.nonEmpty.Broadcast()
}

type prioItem struct {
	t   *task
	seq uint64
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }

func (h prioHeap) Less(i, j int) bool {
	if h[i].t.level != h[j].t.level {
		return h[i].t.level > h[j].t.level // deeper level first
	}
	return h[i].seq < h[j].seq // FIFO among equals
}

func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *prioHeap) Push(x any) { *h = append(*h, x.(prioItem)) }

func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = prioItem{}
	*h = old[:n-1]
	return it
}
