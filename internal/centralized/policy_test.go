package centralized_test

// Wait-policy coverage for the executors' ready-queue pops: every policy ×
// scheduler combination must stay sequentially consistent and must shut
// down cleanly (a WaitSpin executor that missed the close would spin
// forever and hang the run's join), including under GOMAXPROCS(1)
// oversubscription where spin phases must yield to let the master run.

import (
	"runtime"
	"testing"

	"rio/internal/centralized"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestWaitPolicySchedulerMatrix(t *testing.T) {
	for _, pol := range []stf.WaitPolicy{stf.WaitAdaptive, stf.WaitSpin, stf.WaitPark, stf.WaitSleep} {
		for _, kind := range []centralized.SchedulerKind{centralized.FIFO, centralized.WorkStealing, centralized.Priority} {
			e := newEngine(t, centralized.Options{Workers: 4, Scheduler: kind, WaitPolicy: pol, SpinLimit: 8})
			for _, g := range []*stf.Graph{
				graphs.ReadersWriter(20, 6),
				graphs.RandomDeps(200, 16, 2, 1, 7),
			} {
				if err := enginetest.Check(e, g); err != nil {
					t.Errorf("policy %v, %s, %s: %v", pol, kind, g.Name, err)
				}
			}
		}
	}
}

func TestWaitPolicyOversubscribed(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, pol := range []stf.WaitPolicy{stf.WaitAdaptive, stf.WaitSpin} {
		e := newEngine(t, centralized.Options{Workers: 8, WaitPolicy: pol})
		if err := enginetest.Check(e, graphs.Chain(150)); err != nil {
			t.Errorf("policy %v: %v", pol, err)
		}
	}
}

func TestWaitPolicyValidation(t *testing.T) {
	if _, err := centralized.New(centralized.Options{Workers: 2, WaitPolicy: stf.WaitPolicy(42)}); err == nil {
		t.Error("WaitPolicy(42) accepted")
	}
}
