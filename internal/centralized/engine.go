package centralized

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// Options configures a centralized engine.
type Options struct {
	// Workers is the total number of threads p, master included. One
	// thread (the master) is entirely dedicated to task management — the
	// paper notes this caps the runtime efficiency at (p-1)/p. Must be
	// >= 2 so at least one executor exists.
	Workers int
	// Scheduler selects the dispatch strategy (FIFO by default).
	Scheduler SchedulerKind
	// Window bounds the number of in-flight (submitted but not completed)
	// tasks; the master blocks when it is reached, like StarPU's
	// submission window. 0 means unbounded.
	Window int
	// Hint optionally maps tasks to preferred workers; only the
	// WorkStealing scheduler uses it (as a locality hint — unlike the
	// decentralized engine's Mapping, it is not binding). Hinted worker
	// IDs refer to executors, numbered 0..Workers-2.
	Hint stf.Mapping
	// NoAccounting disables per-task and per-wait time-stamping.
	NoAccounting bool
	// WaitPolicy selects how executors wait for ready tasks (see
	// waitTuning for how the policies map onto queue pops). The zero
	// value, WaitAdaptive, spins for SpinLimit probes before parking on
	// the scheduler's condition variable.
	WaitPolicy stf.WaitPolicy
	// SpinLimit is the number of ready-queue probes an executor makes
	// before parking (WaitAdaptive only). 0 means DefaultSpinLimit.
	SpinLimit int
	// Hooks optionally installs lifecycle callbacks (see stf.Hooks). Nil
	// costs the hot path one pointer test per site.
	Hooks *stf.Hooks
	// Retry installs transient-fault retry of task bodies with write-set
	// rollback (see stf.RetryPolicy); nil disables retry. Note that with
	// retry enabled a terminal task failure stops the run (so the
	// completed set stays dependency-closed), whereas the legacy nil-retry
	// behavior records the panic and keeps executing independent tasks.
	Retry *stf.RetryPolicy
	// Snapshots captures and restores data objects for retry rollback.
	Snapshots stf.Snapshotter
	// Resume skips the completed tasks of a previous run's checkpoint.
	Resume *stf.Checkpoint
	// Checkpoint enables completed-task tracking even without a retry
	// policy; failed runs then return a stf.PartialError. Retry != nil
	// implies it.
	Checkpoint bool
}

// DefaultSpinLimit is the default ready-queue spin budget of executor pops
// under WaitAdaptive, mirroring the in-order engine's dependency-wait spin
// budget.
const DefaultSpinLimit = 128

// Engine is a centralized out-of-order STF execution engine.
type Engine struct {
	workers    int // total threads, master included
	kind       SchedulerKind
	window     int
	hint       stf.Mapping
	noAcct     bool
	wt         waitTuning
	hooks      *stf.Hooks
	retry      *stf.RetryPolicy
	snaps      stf.Snapshotter
	resume     *stf.Checkpoint
	checkpoint bool
	stats      trace.Stats
	progress   atomic.Pointer[trace.ProgressTable]
}

// New returns a centralized engine for the given options.
func New(o Options) (*Engine, error) {
	if o.Workers < 2 {
		return nil, fmt.Errorf("centralized: Workers must be >= 2 (one master + executors), got %d", o.Workers)
	}
	if o.Window < 0 {
		return nil, fmt.Errorf("centralized: negative Window %d", o.Window)
	}
	if o.WaitPolicy < stf.WaitAdaptive || o.WaitPolicy > stf.WaitSleep {
		return nil, fmt.Errorf("centralized: unknown WaitPolicy %d", o.WaitPolicy)
	}
	sl := o.SpinLimit
	if sl <= 0 {
		sl = DefaultSpinLimit
	}
	wt := waitTuning{policy: o.WaitPolicy, spin: sl}
	return &Engine{
		workers: o.Workers, kind: o.Scheduler, window: o.Window, hint: o.Hint,
		noAcct: o.NoAccounting, wt: wt, hooks: o.Hooks,
		retry: o.Retry, snaps: o.Snapshots, resume: o.Resume,
		checkpoint: o.Checkpoint || o.Retry != nil,
	}, nil
}

// Name identifies the execution model in reports.
func (e *Engine) Name() string { return "centralized-" + e.kind.String() }

// NumWorkers returns p (master included).
func (e *Engine) NumWorkers() int { return e.workers }

// Run executes prog over numData data objects: the calling goroutine
// becomes the master (unrolling prog, deriving dependencies, dispatching),
// while Workers-1 executor goroutines consume ready tasks.
func (e *Engine) Run(numData int, prog stf.Program) error {
	return e.RunContext(context.Background(), numData, prog)
}

// RunContext is Run with cancellation: when ctx is canceled (or its
// deadline expires) the master stops submitting and dispatching, executors
// stop picking up ready tasks, and the call returns once the tasks already
// inside executor bodies have finished. The returned error wraps ctx's
// cause. Cancellation is cooperative: a task body that never returns keeps
// RunContext blocked (the in-order engine's stall watchdog has no
// centralized counterpart — the master already bounds what can stall here).
func (e *Engine) RunContext(ctx context.Context, numData int, prog stf.Program) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("centralized: run not started: %w", context.Cause(ctx))
	}
	if numData < 0 {
		return errors.New("centralized: negative numData")
	}
	rp := trace.NewProgressTable(e.workers)
	e.progress.Store(rp)
	if h := e.hooks; h != nil && h.OnRunStart != nil {
		h.OnRunStart(e.workers, numData)
	}
	err := e.execute(ctx, numData, rp, prog)
	rp.Finish()
	if h := e.hooks; h != nil && h.OnRunEnd != nil {
		h.OnRunEnd(err)
	}
	return err
}

// execute is RunContext's engine room, split out so the entry point can
// bracket it with the progress table's lifecycle and the OnRunStart /
// OnRunEnd hooks. Progress cells mirror the Stats layout: cell 0 is the
// master, executor w publishes to cell w+1.
func (e *Engine) execute(ctx context.Context, numData int, rp *trace.ProgressTable, prog stf.Program) error {
	nexec := e.workers - 1
	var sched scheduler
	switch e.kind {
	case WorkStealing:
		sched = newStealScheduler(nexec, e.wt)
	case Priority:
		sched = newPrioScheduler(e.wt)
	default:
		sched = newFIFO(e.wt)
	}

	m := &master{
		eng:    e,
		sched:  sched,
		states: make([]depState, numData),
		redMu:  make([]sync.Mutex, numData),
	}
	m.progress = sync.NewCond(&m.mu)
	m.prog = rp.Worker(0)
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				m.cancel(fmt.Errorf("centralized: run canceled: %w", context.Cause(ctx)))
			case <-stopWatch:
			}
		}()
	}

	type execStats struct {
		task, idle time.Duration
		wall       time.Duration
		executed   int64
		retried    int64
	}
	stats := make([]execStats, nexec)

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(nexec)
	for w := 0; w < nexec; w++ {
		go func(w int) {
			defer wg.Done()
			cell := rp.Worker(w + 1)
			hooks := e.hooks
			t0 := time.Now()
			for {
				// A queue pop is this engine's dependency wait: there is no
				// specific task or access to blame, so the hooks see NoTask
				// and a zero Access.
				if hooks != nil && hooks.OnWaitStart != nil {
					hooks.OnWaitStart(stf.WorkerID(w), stf.NoTask, stf.Access{})
				}
				t, idle := sched.pop(w)
				stats[w].idle += idle
				if !e.noAcct && idle > 0 {
					cell.AddWait(idle)
				}
				if hooks != nil && hooks.OnWaitEnd != nil {
					hooks.OnWaitEnd(stf.WorkerID(w), stf.NoTask, stf.Access{})
				}
				// On cancellation a popped task is dropped unrun: the
				// master's drain no longer waits for completion counts.
				if t == nil || m.canceled.Load() {
					break
				}
				cell.SetCurrent(t.id)
				outcome := execTask(m, t, stf.WorkerID(w), e.noAcct, &stats[w].task, &stats[w].retried, cell)
				cell.SetCurrent(stf.NoTask)
				if outcome == taskFailed {
					// Terminal failure under a retry policy: successors are
					// NOT released (the completed set stays dependency-
					// closed) and the run stops dispatching. This executor
					// unwinds; the others drain their in-flight bodies and
					// stop at the canceled flag.
					m.onFailed(t)
					break
				}
				if outcome == taskDropped {
					// The run aborted mid-backoff; the task neither
					// completed nor failed terminally.
					break
				}
				stats[w].executed++
				cell.StoreExecuted(stats[w].executed)
				// Without a retry policy, completion is propagated even
				// after a panic so the master's drain and the successors'
				// counts terminate; the recorded error fails the run.
				m.onComplete(t, outcome == taskDone)
			}
			stats[w].wall = time.Since(t0)
		}(w)
	}

	// The master unrolls the task flow.
	mt0 := time.Now()
	prog(m)
	m.drain()
	sched.close()
	masterWall := time.Since(mt0)
	wg.Wait()
	wall := time.Since(start)

	// Assemble the per-thread decomposition: index 0 is the master, whose
	// non-idle activity is all runtime management.
	st := trace.Stats{Workers: make([]trace.WorkerStats, e.workers), Wall: wall, Accounted: !e.noAcct}
	mw := trace.WorkerStats{Wall: masterWall, Idle: m.idle}
	if !e.noAcct {
		if r := masterWall - m.idle; r > 0 {
			mw.Runtime = r
		}
	}
	mw.Skipped = m.skipped
	st.Workers[0] = mw
	for w := 0; w < nexec; w++ {
		ws := trace.WorkerStats{
			Task:     stats[w].task,
			Idle:     stats[w].idle,
			Wall:     stats[w].wall,
			Executed: stats[w].executed,
			Retried:  stats[w].retried,
		}
		if !e.noAcct {
			if r := ws.Wall - ws.Task - ws.Idle; r > 0 {
				ws.Runtime = r
			}
		}
		st.Workers[w+1] = ws
	}
	e.stats = st
	err := m.err
	if err == nil {
		m.mu.Lock()
		err = errors.Join(m.cancelErr, m.asyncErr)
		m.mu.Unlock()
	}
	if err != nil && e.checkpoint {
		return &stf.PartialError{Cause: err, Result: m.partialResult()}
	}
	return err
}

// Stats returns the time decomposition of the last Run.
func (e *Engine) Stats() *trace.Stats { return &e.stats }

// Progress snapshots the current (or, between runs, the most recent) run's
// always-on counters. Safe to call from any goroutine at any time,
// including while a run is in flight; before the first run it returns a
// zero Progress. The layout mirrors Stats: index 0 is the master (whose
// Declared counts the tasks it has submitted), executors follow at w+1.
func (e *Engine) Progress() trace.Progress {
	t := e.progress.Load()
	if t == nil {
		return trace.Progress{}
	}
	return t.Snapshot()
}

// master is the stf.Submitter driven by the control thread.
type master struct {
	eng    *Engine
	sched  scheduler
	states []depState
	redMu  []sync.Mutex
	next   stf.TaskID
	err    error
	prog   *trace.ProgressCell // master's progress cell (index 0)

	// asyncErr records the first worker-side failure (task panic);
	// guarded by mu.
	asyncErr error

	// canceled flags a context cancellation; cancelErr (guarded by mu)
	// carries the wrapped cause. Executors poll the flag between tasks;
	// the master checks it at every dispatch and inside its waits.
	canceled  atomic.Bool
	cancelErr error

	mu        sync.Mutex
	progress  *sync.Cond
	inflight  int
	submitted int64
	completed int64

	// failed flags a terminal task failure under a retry policy (guarded
	// by mu): dispatch and drain stop, keeping the completed set
	// dependency-closed. doneIDs and failedIDs (also mu-guarded) feed the
	// PartialResult when checkpointing is on.
	failed    bool
	doneIDs   []stf.TaskID
	failedIDs []stf.TaskID

	idle    time.Duration // master time blocked on window or final drain
	skipped int64         // resume-skipped tasks (master-only)
}

// cancel aborts the run: the master's window wait and drain are woken and
// stop waiting, and executors stop picking up tasks.
func (m *master) cancel(err error) {
	m.mu.Lock()
	if m.cancelErr == nil {
		m.cancelErr = err
	}
	m.mu.Unlock()
	m.canceled.Store(true)
	m.progress.Broadcast()
}

// Worker implements stf.Submitter: the master executes no tasks.
func (m *master) Worker() stf.WorkerID { return stf.MasterWorker }

// NumWorkers implements stf.Submitter (total threads, master included).
func (m *master) NumWorkers() int { return m.eng.workers }

// Submit implements stf.Submitter for closure tasks.
func (m *master) Submit(fn stf.TaskFunc, accesses ...stf.Access) stf.TaskID {
	id := m.next
	m.next++
	t := &task{id: id, fn: fn, hint: m.hintFor(id)}
	m.dispatch(t, accesses)
	return id
}

// SubmitTask implements stf.Submitter for recorded tasks.
func (m *master) SubmitTask(rec *stf.Task, k stf.Kernel) stf.TaskID {
	if rec.ID < m.next {
		if m.err == nil {
			m.err = fmt.Errorf("centralized: task ID %d submitted after ID %d", rec.ID, m.next-1)
		}
		return rec.ID
	}
	m.next = rec.ID + 1
	t := &task{id: rec.ID, rec: rec, kern: k, hint: m.hintFor(rec.ID)}
	m.dispatch(t, rec.Accesses)
	return rec.ID
}

func (m *master) hintFor(id stf.TaskID) int {
	if m.eng.hint == nil {
		return -1
	}
	return int(m.eng.hint(id))
}

// dispatch performs the centralized per-task management work: respect the
// submission window, derive and register dependencies, and enqueue the task
// if it is already ready.
func (m *master) dispatch(t *task, accesses []stf.Access) {
	if m.err != nil {
		return
	}
	if m.eng.resume != nil && m.eng.resume.Contains(t.id) {
		// The task completed in a previous run; its effects are already in
		// data memory, so no dependency state is registered on its behalf —
		// successors see it as never having existed, which is exactly an
		// already-satisfied dependency.
		m.skipped++
		m.prog.StoreSkipped(m.skipped)
		return
	}
	m.mu.Lock()
	if m.eng.window > 0 {
		for m.inflight >= m.eng.window && m.cancelErr == nil && !m.failed {
			t0 := time.Now()
			m.progress.Wait()
			waited := time.Since(t0)
			m.idle += waited
			if !m.eng.noAcct {
				m.prog.AddWait(waited)
			}
		}
	}
	if m.cancelErr != nil {
		// Stop submitting: the sticky error makes the remaining
		// submissions of the program no-ops.
		m.err = m.cancelErr
		m.mu.Unlock()
		return
	}
	if m.failed {
		// A task failed terminally; submission stops but m.err stays nil —
		// the failure surfaces through asyncErr (every later dispatch
		// re-checks under the lock, which is fine: the run is over).
		m.mu.Unlock()
		return
	}
	m.inflight++
	m.submitted++
	m.prog.StoreDeclared(m.submitted)
	m.mu.Unlock()

	if m.eng.retry != nil {
		// The attempt loop snapshots the write-set from the access list.
		t.accs = accesses
	}

	for _, a := range accesses {
		if a.Mode.Commutes() {
			t.reds = insertSorted(t.reds, a.Data)
		}
	}
	// The submission guard (+1) keeps the task from becoming ready while
	// its predecessor edges are still being assembled; wire increments
	// pending itself, before registering each edge.
	t.pending.Store(1)
	wire(m.states, t, accesses)
	if t.pending.Add(-1) == 0 {
		m.sched.push(t)
	}
}

// onComplete is called by an executor after running t: release successors
// and update completion accounting. bodyDone reports whether the body
// actually finished (false after a nil-retry panic, where completion is
// still propagated for the legacy run-continues semantics, but the task
// must not enter the checkpoint frontier).
func (m *master) onComplete(t *task, bodyDone bool) {
	for _, s := range t.complete() {
		if s.pending.Add(-1) == 0 {
			m.sched.push(s)
		}
	}
	m.mu.Lock()
	m.inflight--
	m.completed++
	if bodyDone && m.eng.checkpoint {
		m.doneIDs = append(m.doneIDs, t.id)
	}
	m.mu.Unlock()
	m.progress.Broadcast()
}

// onFailed is called by an executor after t failed terminally under a
// retry policy: successors stay blocked (never released), the run stops
// dispatching and popping, and in-flight bodies on other executors drain.
func (m *master) onFailed(t *task) {
	m.mu.Lock()
	m.inflight--
	m.failed = true
	if m.eng.checkpoint {
		m.failedIDs = append(m.failedIDs, t.id)
	}
	m.mu.Unlock()
	m.canceled.Store(true)
	// Parked executors are woken by sched.close() once the master's drain
	// observes the failure — same shutdown path as cancellation.
	m.progress.Broadcast()
}

// partialResult assembles the frontier of a failed checkpointing run. The
// completed set is dependency-closed: a task only ever entered the ready
// queue after every predecessor completed, and failed tasks never release
// successors.
func (m *master) partialResult() *stf.PartialResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	pr := &stf.PartialResult{Tasks: int(m.next)}
	if r := m.eng.resume; r != nil {
		pr.Completed = append(pr.Completed, r.Completed...)
	}
	pr.Completed = append(pr.Completed, m.doneIDs...)
	pr.Failed = append(pr.Failed, m.failedIDs...)
	stf.SortTaskIDs(pr.Completed)
	stf.SortTaskIDs(pr.Failed)
	return pr
}

// Outcomes of execTask.
const (
	// taskDone: the body completed; effects are published.
	taskDone = iota
	// taskPanicked: the body panicked without a retry policy; the error is
	// recorded and the legacy run-continues semantics apply (completion is
	// still propagated so independent tasks keep executing).
	taskPanicked
	// taskFailed: terminal failure under a retry policy (retries
	// exhausted, permanent failure, or unsnapshottable write-set); the
	// write-set was rolled back where a snapshot existed.
	taskFailed
	// taskDropped: the run aborted during a retry backoff; the task
	// neither completed nor failed terminally.
	taskDropped
)

// execTask runs one task body under its reduction locks and reports its
// outcome. Without a retry policy a panic is converted into a recorded run
// error (the unlocks are deferred so a panicking body cannot wedge the
// per-data mutexes). With one, failed attempts roll back the task's
// write-set (captured after the reduction locks are held, so the data is
// quiescent) and re-execute with deterministic backoff; a terminal failure
// is recorded as a *stf.TaskFailure. The task hooks bracket the body here
// so that a failing body skips OnTaskEnd, matching the in-order engine's
// contract.
func execTask(m *master, t *task, w stf.WorkerID, noAcct bool, taskTime *time.Duration, retried *int64, cell *trace.ProgressCell) int {
	for _, d := range t.reds {
		m.redMu[d].Lock()
		defer m.redMu[d].Unlock()
	}
	h := m.eng.hooks
	p := m.eng.retry
	if p == nil {
		return execOnce(m, t, w, noAcct, taskTime)
	}

	restore, can := stf.SnapshotWriteSet(m.eng.snaps, t.accs)
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 || !can {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		if h != nil && h.OnTaskStart != nil && attempt == 1 {
			h.OnTaskStart(w, t.id)
		}
		cause, ok := tryTask(t, w, noAcct, taskTime)
		if ok {
			if h != nil && h.OnTaskEnd != nil {
				h.OnTaskEnd(w, t.id)
			}
			return taskDone
		}
		if restore != nil {
			// Roll back even when terminal: a checkpointed resume
			// re-executes this task over its pre-attempt data.
			restore()
		}
		if attempt >= maxAttempts || !p.Transient(cause) || m.canceled.Load() {
			m.recordError(&stf.TaskFailure{Task: t.id, Attempts: attempt, Cause: cause})
			return taskFailed
		}
		*retried++
		cell.StoreRetried(*retried)
		if h != nil && h.OnTaskRetry != nil {
			h.OnTaskRetry(w, t.id, attempt, cause)
		}
		if !m.backoff(p.Delay(attempt + 1)) {
			return taskDropped
		}
	}
}

// execOnce is the legacy nil-policy path of execTask: one attempt, panic
// recovered into a recorded run error.
func execOnce(m *master, t *task, w stf.WorkerID, noAcct bool, taskTime *time.Duration) (outcome int) {
	outcome = taskDone
	defer func() {
		if r := recover(); r != nil {
			m.recordError(fmt.Errorf("centralized: task %d panicked: %v", t.id, r))
			outcome = taskPanicked
		}
	}()
	h := m.eng.hooks
	if h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(w, t.id)
	}
	if noAcct {
		t.run(w)
	} else {
		tt := time.Now()
		t.run(w)
		*taskTime += time.Since(tt)
	}
	if h != nil && h.OnTaskEnd != nil {
		h.OnTaskEnd(w, t.id)
	}
	return outcome
}

// tryTask runs the body once, converting a panic into a returned cause.
func tryTask(t *task, w stf.WorkerID, noAcct bool, taskTime *time.Duration) (cause any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			cause = r
			ok = false
		}
	}()
	if noAcct {
		t.run(w)
	} else {
		tt := time.Now()
		t.run(w)
		*taskTime += time.Since(tt)
	}
	return nil, true
}

// backoffSlice bounds each individual sleep of a retry backoff so a
// canceled run cuts the wait short.
const backoffSlice = 10 * time.Millisecond

// backoff sleeps d in short slices, polling the canceled flag. Returns
// false when the run aborted mid-wait.
func (m *master) backoff(d time.Duration) bool {
	for d > 0 {
		if m.canceled.Load() {
			return false
		}
		step := d
		if step > backoffSlice {
			step = backoffSlice
		}
		time.Sleep(step)
		d -= step
	}
	return !m.canceled.Load()
}

// recordError stores the first asynchronous (worker-side) error.
func (m *master) recordError(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.asyncErr == nil {
		m.asyncErr = err
	}
}

// insertSorted inserts d into the (short) sorted slice s.
func insertSorted(s []stf.DataID, d stf.DataID) []stf.DataID {
	i := len(s)
	for i > 0 && s[i-1] > d {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = d
	return s
}

// drain blocks until every submitted task has completed, or the run is
// canceled or a task failed terminally (executors then drop the
// still-queued tasks).
func (m *master) drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.completed < m.submitted && m.cancelErr == nil && !m.failed {
		t0 := time.Now()
		m.progress.Wait()
		waited := time.Since(t0)
		m.idle += waited
		if !m.eng.noAcct {
			m.prog.AddWait(waited)
		}
	}
}
