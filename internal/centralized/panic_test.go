package centralized_test

import (
	"strings"
	"testing"
	"time"

	"rio/internal/centralized"
	"rio/internal/stf"
)

func TestPanicFailsRunWithoutDeadlock(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 3})
	done := make(chan error, 1)
	go func() {
		done <- e.Run(1, func(s stf.Submitter) {
			s.Submit(func() { panic("boom") }, stf.W(0))
			s.Submit(func() {}, stf.R(0)) // successor of the panicked task
			s.Submit(func() {}, stf.RW(0))
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicking run returned nil error")
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("error does not mention the panic: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("master drain deadlocked after task panic")
	}
}

func TestPanicUnderReductionLock(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 3})
	done := make(chan error, 1)
	go func() {
		done <- e.Run(1, func(s stf.Submitter) {
			s.Submit(func() { panic("red") }, stf.Red(0))
			s.Submit(func() {}, stf.Red(0))
			s.Submit(func() {}, stf.R(0))
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("no error reported")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("reduction mutex wedged after panic")
	}
}

func TestEngineReusableAfterPanic(t *testing.T) {
	e := newEngine(t, centralized.Options{Workers: 2})
	if err := e.Run(0, func(s stf.Submitter) {
		s.Submit(func() { panic("x") })
	}); err == nil {
		t.Fatal("no error from panicking run")
	}
	ran := false
	if err := e.Run(0, func(s stf.Submitter) {
		s.Submit(func() { ran = true })
	}); err != nil {
		t.Fatalf("engine unusable after failed run: %v", err)
	}
	if !ran {
		t.Error("second run did not execute")
	}
}
