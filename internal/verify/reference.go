package verify

import "rio/internal/stf"

// The reference walk replays the residual task flow (the graph minus any
// checkpoint-completed tasks) once, in program order, recording for every
// access of every task the state of its data object just before the task
// — the same four quantities the protocol's local counters track
// (core/data.go localState), plus the identities behind the counts:
// which terminations the access's get_* wait requires, and which earlier
// accesses conflict with it. The counter snapshot drives the pruning
// soundness pass (simulate.go); the identity lists drive the
// happens-before pass (hb.go).

// preState is the flow-implied state of one data object immediately
// before one access of one task.
type preState struct {
	// lastWrite is the TaskID of the last surviving write (stf.NoTask
	// before any), nbReads/nbReds count reads/reductions since it, and
	// nbRedsBeforeRun is the reduction count at the start of the current
	// reduction run — exactly the localState quadruple a faithful stream
	// must have accumulated when the access's wait runs.
	lastWrite                        int64
	nbReads, nbReds, nbRedsBeforeRun int64
	// waitsOn lists the tasks whose terminations the access's get_* wait
	// requires: the happens-before edges the wait certifies.
	waitsOn []stf.TaskID
	// conflicts lists the frontier of earlier conflicting accesses (last
	// writer, readers/reductions since — per the access's mode, with
	// red-red pairs exempt). Transitivity of the vector-clock order
	// extends the frontier check to all conflicting pairs.
	conflicts []stf.TaskID
}

// buildReference computes c.pre over the residual flow.
func (c *certifier) buildReference() {
	type refCell struct {
		lastWrite stf.TaskID
		readers   []stf.TaskID
		reds      []stf.TaskID
		// runStart is the index into reds where the current (open)
		// reduction run begins; reds[:runStart] are earlier, closed runs.
		runStart int
	}
	cells := make([]refCell, c.g.NumData)
	for i := range cells {
		cells[i].lastWrite = stf.NoTask
	}
	c.pre = make([][]preState, len(c.g.Tasks))
	for i := range c.g.Tasks {
		if c.completed[i] {
			continue
		}
		t := &c.g.Tasks[i]
		ps := make([]preState, len(t.Accesses))
		for ai, a := range t.Accesses {
			cell := &cells[a.Data]
			p := preState{
				lastWrite:       int64(cell.lastWrite),
				nbReads:         int64(len(cell.readers)),
				nbReds:          int64(len(cell.reds)),
				nbRedsBeforeRun: int64(cell.runStart),
			}
			switch {
			case a.Mode.Writes():
				// get_write waits for the last write, every read and
				// every reduction since it; all of those conflict.
				p.waitsOn = concatIDs(cell.lastWrite, cell.readers, cell.reds)
				p.conflicts = p.waitsOn
			case a.Mode.Commutes():
				// get_red waits for the last write, the reads since it
				// and the reductions of earlier runs (its own run
				// commutes). Conflicts are write and reads only: red-red
				// pairs are exempt by commutativity.
				p.waitsOn = concatIDs(cell.lastWrite, cell.readers, cell.reds[:cell.runStart])
				p.conflicts = concatIDs(cell.lastWrite, cell.readers, nil)
			default:
				// get_read waits for the last write and every reduction
				// since it; both conflict (reads commute with reads).
				p.waitsOn = concatIDs(cell.lastWrite, cell.reds, nil)
				p.conflicts = p.waitsOn
			}
			ps[ai] = p
		}
		for _, a := range t.Accesses {
			cell := &cells[a.Data]
			switch {
			case a.Mode.Writes():
				cell.lastWrite = t.ID
				cell.readers = nil
				cell.reds = nil
				cell.runStart = 0
			case a.Mode.Commutes():
				cell.reds = append(cell.reds, t.ID)
			default:
				// A read closes any open reduction run.
				cell.runStart = len(cell.reds)
				cell.readers = append(cell.readers, t.ID)
			}
		}
		c.pre[i] = ps
	}
}

// concatIDs copies (lastWrite if present) + a + b into a fresh slice; the
// source slices keep growing after the snapshot.
func concatIDs(lastWrite stf.TaskID, a, b []stf.TaskID) []stf.TaskID {
	n := len(a) + len(b)
	if lastWrite != stf.NoTask {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]stf.TaskID, 0, n)
	if lastWrite != stf.NoTask {
		out = append(out, lastWrite)
	}
	out = append(out, a...)
	return append(out, b...)
}

// accessIndex finds the declared access of t on data d, or -1.
func accessIndex(t *stf.Task, d stf.DataID) int {
	for i := range t.Accesses {
		if t.Accesses[i].Data == d {
			return i
		}
	}
	return -1
}
