package verify

import (
	"rio/internal/analyze"
	"rio/internal/stf"
)

// Pruning soundness (RIO-V006): a compiled stream may omit a foreign
// task's declares — §3.5 relevance pruning and checkpoint resume both do
// — but only when the omission is *dominated*: every later wait on the
// affected data must observe local counters that a surviving op already
// re-established (most commonly a surviving declare_write, which resets
// the whole quadruple and thereby forgives everything elided before it).
//
// The check is exact, not structural: each worker's private counters are
// simulated over its stream with the very transition rules the runtime
// uses (declares and terminates mutate, waits only observe —
// core/data.go and the compiled interpreter in core/compiled.go), and at
// every get_* the simulated quadruple is compared against the reference
// pre-state the full residual flow implies. Agreement at every wait is
// precisely the condition under which the §3.5 argument goes through:
// the wait blocks until the same version of the data the sequential flow
// would hand the task. A counter left behind means the wait would admit
// a stale version (a dropped real dependency); a counter ahead means the
// wait could never be satisfied (a deadlocked stream). This is strictly
// more permissive than re-running the compiler's relevance analysis —
// any elision dominated by a later surviving write certifies clean — and
// strictly safe: it accepts no stream whose waits diverge from the flow.

// simCell mirrors core's localState for one (worker, data) pair.
type simCell struct {
	lastWrite                        int64
	nbReads, nbReds, nbRedsBeforeRun int64
}

func (s *simCell) declareRead() {
	s.nbReads++
	s.nbRedsBeforeRun = s.nbReds
}

func (s *simCell) declareWrite(task int64) {
	s.nbReads = 0
	s.lastWrite = task
	s.nbReds = 0
	s.nbRedsBeforeRun = 0
}

func (s *simCell) declareRed() { s.nbReds++ }

// simulate replays worker w's stream over simulated local counters and
// checks every wait against the reference. Waits that are present and
// agree are marked edge-usable for the happens-before pass.
func (c *certifier) simulate(w int) {
	local := make([]simCell, c.g.NumData)
	for i := range local {
		local[i].lastWrite = int64(stf.NoTask)
	}
	// One finding per (worker, data): the first divergent wait on a data
	// object makes every later wait on it divergent too.
	flagged := make([]bool, c.g.NumData)
	for _, in := range c.cp.Streams[w] {
		switch in.Op {
		case stf.OpDeclareRead, stf.OpTermRead:
			local[in.Data].declareRead()
		case stf.OpDeclareWrite, stf.OpTermWrite:
			local[in.Data].declareWrite(int64(in.Task))
		case stf.OpDeclareRed, stf.OpTermRed:
			local[in.Data].declareRed()
		case stf.OpGetRead, stf.OpGetWrite, stf.OpGetRed:
			c.checkWait(stf.WorkerID(w), in, &local[in.Data], flagged)
		}
	}
}

// checkWait compares the simulated counters at one get_* against the
// reference pre-state of the waiting task, field by field as the wait
// condition reads them (readReady/writeReady/redReady in core/data.go).
func (c *certifier) checkWait(w stf.WorkerID, in stf.Instr, l *simCell, flagged []bool) {
	if c.completed[in.Task] {
		return // already RIO-V007; no reference state exists
	}
	t := &c.g.Tasks[in.Task]
	ai := accessIndex(t, in.Data)
	if ai < 0 {
		return // already RIO-V005: the graph has no such access
	}
	p := &c.pre[in.Task][ai]
	ok := false
	switch in.Op {
	case stf.OpGetRead:
		ok = l.lastWrite == p.lastWrite && l.nbReds == p.nbReds
	case stf.OpGetWrite:
		ok = l.lastWrite == p.lastWrite && l.nbReads == p.nbReads && l.nbReds == p.nbReds
	case stf.OpGetRed:
		ok = l.lastWrite == p.lastWrite && l.nbReads == p.nbReads && l.nbRedsBeforeRun == p.nbRedsBeforeRun
	}
	if ok {
		if c.edgeOK[in.Task] == nil {
			c.edgeOK[in.Task] = make([]bool, len(t.Accesses))
		}
		c.edgeOK[in.Task][ai] = true
		return
	}
	if flagged[in.Data] {
		return
	}
	flagged[in.Data] = true
	c.addf(analyze.CodeVerifyElision, t.ID, in.Data, w,
		"unsound elision: worker %d's %s for task %d would wait on version (write %d, %d reads, %d reds, %d before run) but the flow requires (write %d, %d reads, %d reds, %d before run) — a pruned declare on data %d is not dominated by a surviving op",
		w, in.Op, t.ID,
		l.lastWrite, l.nbReads, l.nbReds, l.nbRedsBeforeRun,
		p.lastWrite, p.nbReads, p.nbReds, p.nbRedsBeforeRun, in.Data)
}
