package verify

import (
	"testing"

	"rio/internal/analyze"
	"rio/internal/faultinject"
	"rio/internal/sched"
	"rio/internal/stf"
)

func cyclic(workers int) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID { return stf.WorkerID(int(id) % workers) }
}

func mustCompile(t *testing.T, g *stf.Graph, m stf.Mapping, workers int, prune bool) *stf.CompiledProgram {
	t.Helper()
	var rel [][]bool
	if prune {
		rel = sched.Relevant(g, m, workers)
	}
	cp, err := stf.Compile(g, m, workers, rel)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return cp
}

func assertClean(t *testing.T, rep *analyze.Report, what string) {
	t.Helper()
	if len(rep.Findings) != 0 {
		t.Fatalf("%s: expected a clean certificate, got %d finding(s), first: %s",
			what, len(rep.Findings), rep.Findings[0])
	}
}

// TestCertifyWorkloadsClean certifies every shipped workload generator,
// pruned and unpruned, under several mappings and worker counts.
func TestCertifyWorkloadsClean(t *testing.T) {
	workloads := []string{"lu", "cholesky", "gemm", "wavefront", "chain", "random"}
	mappings := []string{"cyclic", "block", "blockcyclic:2", "single:0"}
	for _, wl := range workloads {
		g, err := analyze.WorkloadGraph(wl, 4, 42)
		if err != nil {
			t.Fatalf("workload %s: %v", wl, err)
		}
		for _, spec := range mappings {
			for _, workers := range []int{1, 3} {
				m, err := analyze.ParseMapping(spec, g, workers)
				if err != nil {
					t.Fatalf("mapping %s: %v", spec, err)
				}
				for _, prune := range []bool{false, true} {
					cp := mustCompile(t, g, m, workers, prune)
					rep := Certify(g, cp, Config{Mapping: m})
					assertClean(t, rep, wl+"/"+spec)
				}
			}
		}
	}
}

// TestCertifyReductionsClean covers the reduction-run protocol paths:
// runs of commuting accesses interleaved with reads and writes.
func TestCertifyReductionsClean(t *testing.T) {
	g := stf.NewGraph("red-runs", 2)
	g.Add(0, 0, 0, 0, stf.W(0), stf.W(1))
	g.Add(0, 0, 0, 0, stf.Red(0))
	g.Add(0, 0, 0, 0, stf.Red(0), stf.R(1))
	g.Add(0, 0, 0, 0, stf.Red(0))
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 0, 0, 0, stf.Red(0))
	g.Add(0, 0, 0, 0, stf.RW(0), stf.Red(1))
	for _, workers := range []int{1, 2, 3} {
		m := cyclic(workers)
		for _, prune := range []bool{false, true} {
			cp := mustCompile(t, g, m, workers, prune)
			assertClean(t, Certify(g, cp, Config{Mapping: m}), "red-runs")
		}
	}
}

// TestCertifyResumePruned certifies checkpoint-resumed programs,
// including a chained (checkpoint-of-a-checkpoint) prune.
func TestCertifyResumePruned(t *testing.T) {
	g, err := analyze.WorkloadGraph("lu", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := cyclic(3)
	for _, prune := range []bool{false, true} {
		cp := mustCompile(t, g, m, 3, prune)
		// A task-flow prefix is always dependency-closed (every
		// dependency has a smaller ID).
		c1 := &stf.Checkpoint{Tasks: len(g.Tasks), Completed: prefixIDs(3)}
		p1 := stf.PruneCompleted(cp, c1)
		assertClean(t, Certify(g, p1, Config{Mapping: m, Resume: c1}), "resume")

		// Chained: resume the resumed program from a later frontier.
		// The certificate covers the union of the applied checkpoints.
		c2 := &stf.Checkpoint{Tasks: len(g.Tasks), Completed: prefixIDs(7)}
		p2 := stf.PruneCompleted(p1, c2)
		assertClean(t, Certify(g, p2, Config{Mapping: m, Resume: c2}), "chained resume")
	}
}

func prefixIDs(n int) []stf.TaskID {
	out := make([]stf.TaskID, n)
	for i := range out {
		out[i] = stf.TaskID(i)
	}
	return out
}

// mutationGraph is the crafted flow the mutation-class table runs over:
// two data objects, writer/reader pairs split across two workers, so
// every defect class has an applicable and detectable site.
func mutationGraph() (*stf.Graph, stf.Mapping) {
	g := stf.NewGraph("mutation", 2)
	g.Add(0, 0, 0, 0, stf.W(0)) // t0 → worker 0
	g.Add(0, 0, 0, 0, stf.R(0)) // t1 → worker 1
	g.Add(0, 0, 0, 0, stf.W(1)) // t2 → worker 0
	g.Add(0, 0, 0, 0, stf.R(1)) // t3 → worker 1
	return g, cyclic(2)
}

// TestMutationClassesFlagged seeds one defect of every class and asserts
// the certifier rejects each with its class's distinct RIO-V00x code.
func TestMutationClassesFlagged(t *testing.T) {
	g, m := mutationGraph()
	cp := mustCompile(t, g, m, 2, false)
	assertClean(t, Certify(g, cp, Config{Mapping: m}), "unmutated baseline")

	cases := []struct {
		mut  faultinject.StreamMutation
		site int
		want analyze.Code
	}{
		{faultinject.MutCorruptOpcode, 0, analyze.CodeVerifyStructure},
		{faultinject.MutDropExec, 0, analyze.CodeVerifyCoverage},
		{faultinject.MutRetargetExec, 0, analyze.CodeVerifyOwnership},
		{faultinject.MutReorderGroups, 0, analyze.CodeVerifyOrder},
		{faultinject.MutRetargetData, 0, analyze.CodeVerifyAccessSet},
		{faultinject.MutElideDeclares, 0, analyze.CodeVerifyElision},
		// Site 2 drops t1's get_read on data 0: the wait that orders the
		// reader after t0's write on the other worker.
		{faultinject.MutDropWait, 2, analyze.CodeVerifyHappensBefore},
	}
	for _, tc := range cases {
		mutated, ok := faultinject.MutateStream(cp, tc.mut, tc.site)
		if !ok {
			t.Errorf("%s: no mutation site on the crafted program", tc.mut)
			continue
		}
		rep := Certify(g, mutated, Config{Mapping: m})
		if rep.Errors == 0 {
			t.Errorf("%s: mutation not rejected", tc.mut)
			continue
		}
		if !rep.Has(tc.want) {
			t.Errorf("%s: want %s, got findings: %v", tc.mut, tc.want, rep.Findings)
		}
	}

	// The eighth class needs a checkpoint: prune one stream only.
	c := &stf.Checkpoint{Tasks: len(g.Tasks), Completed: []stf.TaskID{0}}
	mutated, ok := faultinject.SplitResume(cp, c, 0)
	if !ok {
		t.Fatal("split-resume: no mutation site")
	}
	rep := Certify(g, mutated, Config{Mapping: m, Resume: c})
	if !rep.Has(analyze.CodeVerifyResume) {
		t.Errorf("split-resume: want %s, got findings: %v", analyze.CodeVerifyResume, rep.Findings)
	}
}

// TestMutationSiteSweep applies every class at every applicable site and
// requires rejection each time — 100%% of seeded stream mutations.
func TestMutationSiteSweep(t *testing.T) {
	g, m := mutationGraph()
	cp := mustCompile(t, g, m, 2, false)
	for _, mut := range faultinject.StreamMutations() {
		if mut == faultinject.MutSplitResume {
			continue // driven via SplitResume below
		}
		for site := 0; site < 12; site++ {
			mutated, ok := faultinject.MutateStream(cp, mut, site)
			if !ok {
				continue
			}
			if rep := Certify(g, mutated, Config{Mapping: m}); rep.Errors == 0 {
				t.Errorf("%s at site %d: mutation not rejected", mut, site)
			}
		}
	}
	c := &stf.Checkpoint{Tasks: len(g.Tasks), Completed: []stf.TaskID{0, 1}}
	for site := 0; site < 4; site++ {
		mutated, ok := faultinject.SplitResume(cp, c, site)
		if !ok {
			continue
		}
		if rep := Certify(g, mutated, Config{Mapping: m, Resume: c}); rep.Errors == 0 {
			t.Errorf("split-resume at site %d: mutation not rejected", site)
		}
	}
}

// TestCertifyRejectsBadInputs covers the structural V001/V007 paths that
// don't come from stream mutations.
func TestCertifyRejectsBadInputs(t *testing.T) {
	g, m := mutationGraph()
	cp := mustCompile(t, g, m, 2, false)

	if rep := Certify(g, cp, Config{}); !rep.Has(analyze.CodeVerifyStructure) {
		t.Errorf("nil mapping: want %s, got %v", analyze.CodeVerifyStructure, rep.Findings)
	}
	if rep := Certify(nil, cp, Config{Mapping: m}); !rep.Has(analyze.CodeVerifyStructure) {
		t.Errorf("nil graph: want %s, got %v", analyze.CodeVerifyStructure, rep.Findings)
	}
	other := stf.NewGraph("other", 3)
	if rep := Certify(other, cp, Config{Mapping: m}); !rep.Has(analyze.CodeVerifyStructure) {
		t.Errorf("mismatched graph: want %s, got %v", analyze.CodeVerifyStructure, rep.Findings)
	}
	bad := func(stf.TaskID) stf.WorkerID { return 99 }
	if rep := Certify(g, cp, Config{Mapping: bad}); !rep.Has(analyze.CodeVerifyStructure) {
		t.Errorf("out-of-range mapping: want %s, got %v", analyze.CodeVerifyStructure, rep.Findings)
	}

	// A checkpoint that is not dependency-closed: task 1 reads what
	// task 0 wrote, but only task 1 is marked completed.
	c := &stf.Checkpoint{Tasks: len(g.Tasks), Completed: []stf.TaskID{1}}
	pruned := stf.PruneCompleted(cp, c)
	if rep := Certify(g, pruned, Config{Mapping: m, Resume: c}); !rep.Has(analyze.CodeVerifyResume) {
		t.Errorf("open checkpoint: want %s, got %v", analyze.CodeVerifyResume, rep.Findings)
	}
}

// TestCertifyCrossStreamDuplicateExec covers the duplicate-coverage path
// the mutators don't hit: the same task executing on two workers.
func TestCertifyCrossStreamDuplicateExec(t *testing.T) {
	g, m := mutationGraph()
	cp := mustCompile(t, g, m, 2, false)
	mutated := faultinject.CloneProgram(cp)
	// Graft t0's exec group onto worker 1's stream in place of its
	// declare group (t0's group is first in both streams).
	var ownedT0 []stf.Instr
	for _, in := range cp.Streams[0] {
		if in.Task == 0 {
			ownedT0 = append(ownedT0, in)
		}
	}
	var rest []stf.Instr
	for _, in := range cp.Streams[1] {
		if in.Task != 0 {
			rest = append(rest, in)
		}
	}
	mutated.Streams[1] = append(ownedT0, rest...)
	rep := Certify(g, mutated, Config{Mapping: m})
	if !rep.Has(analyze.CodeVerifyCoverage) {
		t.Errorf("duplicate exec: want %s, got %v", analyze.CodeVerifyCoverage, rep.Findings)
	}
}

// TestCertifyDeterministic pins that certification of the same inputs
// yields byte-identical findings (report order is part of the contract).
func TestCertifyDeterministic(t *testing.T) {
	g, m := mutationGraph()
	cp := mustCompile(t, g, m, 2, false)
	mutated, ok := faultinject.MutateStream(cp, faultinject.MutElideDeclares, 0)
	if !ok {
		t.Fatal("no elision site")
	}
	a := Certify(g, mutated, Config{Mapping: m})
	b := Certify(g, mutated, Config{Mapping: m})
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i] != b.Findings[i] {
			t.Fatalf("finding %d differs: %v vs %v", i, a.Findings[i], b.Findings[i])
		}
	}
}
