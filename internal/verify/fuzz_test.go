package verify

import (
	"math/rand"
	"testing"

	"rio/internal/enginetest"
	"rio/internal/faultinject"
	"rio/internal/sched"
	"rio/internal/stf"
)

// FuzzCompileVerify is the translation-validation property: for any
// graph, mapping and worker count, whatever stf.Compile produces — with
// or without §3.5 pruning, with or without checkpoint resume — must
// certify clean, and every faultinject stream mutation of it must be
// rejected. The first half fuzzes the compiler against the certifier;
// the second fuzzes the certifier against known-broken streams.
func FuzzCompileVerify(f *testing.F) {
	f.Add(int64(1), 12, 5, 2, 0, false)
	f.Add(int64(2), 24, 3, 3, 7, true)
	f.Add(int64(3), 6, 2, 1, 1, false)
	f.Add(int64(4), 40, 8, 4, 13, true)
	f.Fuzz(func(t *testing.T, seed int64, maxTasks, maxData, workers, site int, prune bool) {
		if maxTasks < 1 || maxTasks > 64 || maxData < 1 || maxData > 16 {
			t.Skip()
		}
		if workers < 1 || workers > 5 || site < 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		var g *stf.Graph
		if seed%2 == 0 {
			g = enginetest.RandomGraph(rng, maxTasks, maxData)
		} else {
			g = enginetest.RandomGraphWithReductions(rng, maxTasks, maxData)
		}
		block := 1 + rng.Intn(3)
		m := func(id stf.TaskID) stf.WorkerID {
			return stf.WorkerID(int(id) / block % workers)
		}
		var rel [][]bool
		if prune {
			rel = sched.Relevant(g, m, workers)
		}
		cp, err := stf.Compile(g, m, workers, rel)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if rep := Certify(g, cp, Config{Mapping: m}); len(rep.Findings) != 0 {
			t.Fatalf("fresh compile did not certify: %s", rep.Findings[0])
		}

		// Resume from a task-flow prefix (always dependency-closed).
		c := &stf.Checkpoint{Tasks: len(g.Tasks), Completed: prefixIDs(site % (len(g.Tasks) + 1))}
		resumed := stf.PruneCompleted(cp, c)
		if rep := Certify(g, resumed, Config{Mapping: m, Resume: c}); len(rep.Findings) != 0 {
			t.Fatalf("resumed program did not certify: %s", rep.Findings[0])
		}

		// Every applicable stream mutation must be rejected.
		for _, mut := range faultinject.StreamMutations() {
			if mut == faultinject.MutSplitResume {
				if mutated, ok := faultinject.SplitResume(cp, c, site); ok {
					if rep := Certify(g, mutated, Config{Mapping: m, Resume: c}); rep.Errors == 0 {
						t.Fatalf("%s at site %d not rejected", mut, site)
					}
				}
				continue
			}
			mutated, ok := faultinject.MutateStream(cp, mut, site)
			if !ok {
				continue
			}
			if rep := Certify(g, mutated, Config{Mapping: m}); rep.Errors == 0 {
				t.Fatalf("%s at site %d not rejected", mut, site)
			}
		}
	})
}
