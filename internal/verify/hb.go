package verify

import (
	"rio/internal/analyze"
	"rio/internal/stf"
)

// Static happens-before certification (RIO-V008): build, from the
// streams' certified waits alone, a vector-clock order over task
// executions, then require every conflicting access pair of the residual
// flow to be covered by it.
//
// Construction: each worker's exec groups are numbered by stream
// position (the worker executes them in that order — program-order
// edges), and every wait that survived the previous passes (present in
// the owner's stream with counters matching the reference) contributes
// edges from the terminations it provably blocks on: the last write, the
// reads since it, the reductions the mode's condition counts. A task's
// vector clock is the join of its program-order predecessor's and its
// wait edges' clocks, with its own stream position entered last.
//
// Soundness of the edges is exactly the protocol argument of §3.4: a
// matched wait's equality condition cannot be satisfied before those
// terminations' atomic publications, each of which follows its task's
// execution on the owning worker. Waits that are missing or mismatched
// contribute nothing, so anything they were supposed to order shows up
// as an uncovered conflict.
//
// Coverage: for every access, the conflict frontier recorded by the
// reference walk (W→W, W→R, R→W and reduction fences; red-red pairs
// commute and are exempt) must satisfy VC(later)[worker(earlier)] >=
// pos(earlier). Vector-clock order is transitive, so frontier coverage
// extends to all conflicting pairs.
func (c *certifier) certifyHB() {
	if c.counts[analyze.CodeVerifyOrder] > 0 || c.counts[analyze.CodeVerifyResume] > 0 {
		// Without intact program order (or with completed tasks leaking
		// back into streams) stream positions don't define a usable
		// clock; the defects are already reported.
		return
	}
	n := len(c.g.Tasks)
	workers := c.cp.Workers
	vc := make([]int32, n*workers)
	known := make([]bool, n)
	prevOnWorker := make([]stf.TaskID, workers)
	for i := range prevOnWorker {
		prevOnWorker[i] = stf.NoTask
	}
	for i := range c.g.Tasks {
		if c.completed[i] || c.execCount[i] != 1 {
			continue
		}
		pos := c.execAt[i]
		row := vc[i*workers : (i+1)*workers]
		if p := prevOnWorker[pos.worker]; p != stf.NoTask {
			joinRow(row, vc[int(p)*workers:(int(p)+1)*workers])
		}
		prevOnWorker[pos.worker] = stf.TaskID(i)
		for ai := range c.g.Tasks[i].Accesses {
			if c.edgeOK[i] == nil || !c.edgeOK[i][ai] {
				continue
			}
			for _, u := range c.pre[i][ai].waitsOn {
				if known[u] {
					joinRow(row, vc[int(u)*workers:(int(u)+1)*workers])
				}
			}
		}
		row[pos.worker] = pos.idx
		known[i] = true
	}
	// One finding per data object: a single missing wait leaves every
	// later conflicting pair on that data uncovered too.
	reported := make([]bool, c.g.NumData)
	for i := range c.g.Tasks {
		if c.completed[i] || !known[i] {
			continue
		}
		for ai, a := range c.g.Tasks[i].Accesses {
			if reported[a.Data] {
				continue
			}
			for _, u := range c.pre[i][ai].conflicts {
				if !known[u] {
					continue
				}
				pu := c.execAt[u]
				if vc[i*workers+int(pu.worker)] >= pu.idx {
					continue
				}
				reported[a.Data] = true
				c.addf(analyze.CodeVerifyHappensBefore, stf.TaskID(i), a.Data, pu.worker,
					"happens-before violation on data %d: task %d (%s, worker %d) is not ordered after conflicting task %d (worker %d) — no surviving wait certifies the edge",
					a.Data, i, a.Mode, c.execAt[i].worker, u, pu.worker)
				break
			}
		}
	}
}

// joinRow takes the component-wise max of two vector-clock rows into dst.
func joinRow(dst, src []int32) {
	for k := range dst {
		if src[k] > dst[k] {
			dst[k] = src[k]
		}
	}
}
