// Package verify implements translation validation for compiled replay:
// an independent static certifier that, given a recorded Graph, a static
// Mapping and a CompiledProgram, proves the flat per-worker instruction
// streams still refine the recorded task flow. Nothing here is shared
// with the compiler (stf.Compile) beyond the instruction format itself —
// the expected micro-op sequences, the counter semantics and the
// happens-before construction are re-derived from the graph and the
// protocol definition (core/data.go, Algorithms 1 and 2), so a compiler
// bug cannot vouch for itself.
//
// Three properties are certified, each with its own RIO-V00x codes:
//
//   - Coverage & order (RIO-V001..V005): every surviving task executes
//     exactly once, on its mapped worker, in program order, with its
//     get_* acquires before the exec and its terminate_* publications
//     after, and with micro-ops matching the recorded access list
//     exactly.
//
//   - Pruning soundness (RIO-V006, RIO-V007): a worker's stream may
//     legally omit a foreign task's declares (§3.5 pruning, checkpoint
//     resume) only when every later wait on the affected data is
//     dominated by a surviving op that re-establishes the same version —
//     checked by simulating each worker's private counters over its
//     stream and comparing them, at every wait, against the counters the
//     full residual flow implies. An elision that drops a real
//     dependency leaves the simulated counters behind (the wait would
//     admit a stale version) or ahead (the wait could never be
//     satisfied); either divergence is flagged.
//
//   - Static happens-before (RIO-V008): a vector-clock pass over the
//     certified waits proving every conflicting access pair (W→W, W→R,
//     R→W, and reduction fences) is ordered — the compile-time
//     complement of the dynamic trace.RaceDetector.
//
// Findings flow through the analyze report machinery, so rio-vet,
// preflight and callers of the stf-level API all consume one format.
package verify

import (
	"fmt"

	"rio/internal/analyze"
	"rio/internal/stf"
)

// Config parameterizes a certification run.
type Config struct {
	// Mapping is the static task→worker mapping cp was compiled for. It
	// must be total over the graph and must not return SharedWorker.
	Mapping stf.Mapping
	// Resume, when non-nil, declares that cp had the checkpoint's
	// completed tasks pruned out (stf.PruneCompleted): completed tasks
	// must have no surviving micro-ops, and the certificate covers the
	// residual flow only. For chained checkpoints, pass the union of all
	// applied checkpoints.
	Resume *stf.Checkpoint
}

// maxPerCode caps how many findings of one code a single certification
// reports: one corrupt stream would otherwise cascade into thousands of
// secondary findings without adding information.
const maxPerCode = 16

// execPos locates a task's (unique) exec group: the worker whose stream
// holds it and the group's 1-based position among that stream's exec
// groups.
type execPos struct {
	worker stf.WorkerID
	idx    int32
}

type certifier struct {
	g   *stf.Graph
	cp  *stf.CompiledProgram
	cfg Config
	rep *analyze.Report

	owners    []stf.WorkerID
	completed []bool
	// pre holds, for each residual task and each of its accesses, the
	// state of the data object the full residual flow implies just before
	// the task (see reference.go).
	pre [][]preState
	// execCount and execAt record where each task's exec group landed;
	// dupInGroup marks duplicates already reported during the group scan.
	execCount  []int
	execAt     []execPos
	dupInGroup []bool
	// edgeOK marks (task, access) waits that are present in the owner
	// stream and whose simulated counters matched the reference — only
	// those waits contribute happens-before edges.
	edgeOK [][]bool
	// counts tallies findings per code for the cap and the phase gates.
	counts map[analyze.Code]int
}

// Certify checks that cp is a faithful lowering of g under cfg.Mapping
// and returns the findings as an analyze report (empty findings = the
// program is certified). All verifier findings are Error severity.
func Certify(g *stf.Graph, cp *stf.CompiledProgram, cfg Config) *analyze.Report {
	c := &certifier{
		g: g, cp: cp, cfg: cfg,
		rep:    &analyze.Report{},
		counts: make(map[analyze.Code]int),
	}
	if g != nil {
		c.rep.NumData = g.NumData
		c.rep.Tasks = len(g.Tasks)
	}
	if !c.validateInputs() {
		return c.rep.Finish()
	}
	c.validateResume()
	c.buildReference()
	structOK := true
	for w := range cp.Streams {
		if !c.scanStructure(w) {
			structOK = false
		}
	}
	if !structOK {
		// A structurally corrupt stream (unknown opcode, out-of-range
		// IDs) makes group parsing and counter simulation meaningless;
		// report the corruption alone.
		return c.rep.Finish()
	}
	for w := range cp.Streams {
		c.scanGroups(w)
		c.simulate(w)
	}
	c.checkCoverage()
	c.certifyHB()
	return c.rep.Finish()
}

func (c *certifier) addf(code analyze.Code, task stf.TaskID, data stf.DataID, worker stf.WorkerID, format string, args ...any) {
	c.counts[code]++
	if c.counts[code] > maxPerCode {
		return
	}
	c.rep.Add(analyze.Finding{Code: code, Severity: analyze.Error,
		Task: task, Data: data, Worker: worker,
		Message: fmt.Sprintf(format, args...)})
}

// validateInputs checks the (graph, program, mapping) triple is usable at
// all; anything wrong here is RIO-V001 and aborts certification.
func (c *certifier) validateInputs() bool {
	const noID = analyze.NoID
	if c.g == nil || c.cp == nil {
		c.addf(analyze.CodeVerifyStructure, noID, noID, noID,
			"nothing to certify: nil graph or compiled program")
		return false
	}
	if err := c.g.Validate(); err != nil {
		c.addf(analyze.CodeVerifyStructure, noID, noID, noID,
			"graph is malformed: %v", err)
		return false
	}
	if c.cp.Workers < 1 || len(c.cp.Streams) != c.cp.Workers {
		c.addf(analyze.CodeVerifyStructure, noID, noID, noID,
			"program declares %d worker(s) but carries %d stream(s)",
			c.cp.Workers, len(c.cp.Streams))
		return false
	}
	if c.cp.NumData != c.g.NumData {
		c.addf(analyze.CodeVerifyStructure, noID, noID, noID,
			"program compiled over %d data object(s), graph has %d",
			c.cp.NumData, c.g.NumData)
		return false
	}
	if len(c.cp.Tasks) != len(c.g.Tasks) {
		c.addf(analyze.CodeVerifyStructure, noID, noID, noID,
			"program task table has %d task(s), graph has %d",
			len(c.cp.Tasks), len(c.g.Tasks))
		return false
	}
	for i := range c.g.Tasks {
		if !sameTask(&c.cp.Tasks[i], &c.g.Tasks[i]) {
			c.addf(analyze.CodeVerifyStructure, stf.TaskID(i), noID, noID,
				"program task table entry %d does not match the recorded task", i)
			return false
		}
	}
	if c.cfg.Mapping == nil {
		c.addf(analyze.CodeVerifyStructure, noID, noID, noID,
			"no mapping to certify ownership against")
		return false
	}
	c.owners = make([]stf.WorkerID, len(c.g.Tasks))
	for i := range c.g.Tasks {
		o := c.cfg.Mapping(stf.TaskID(i))
		if o < 0 || int(o) >= c.cp.Workers {
			c.addf(analyze.CodeVerifyStructure, stf.TaskID(i), noID, o,
				"mapping sends task %d to worker %d, outside [0,%d) — the mapping cannot certify a compiled program", i, o, c.cp.Workers)
			return false
		}
		c.owners[i] = o
	}
	c.completed = make([]bool, len(c.g.Tasks))
	c.execCount = make([]int, len(c.g.Tasks))
	c.execAt = make([]execPos, len(c.g.Tasks))
	c.dupInGroup = make([]bool, len(c.g.Tasks))
	c.edgeOK = make([][]bool, len(c.g.Tasks))
	return true
}

// sameTask compares the fields of a program task-table entry against the
// recorded task: OpExec dispatches kernels through the table, so a
// diverging entry runs different code even if every stream is faithful.
func sameTask(a, b *stf.Task) bool {
	if a.ID != b.ID || a.Kernel != b.Kernel || a.I != b.I || a.J != b.J || a.K != b.K ||
		len(a.Accesses) != len(b.Accesses) {
		return false
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			return false
		}
	}
	return true
}

// validateResume checks the checkpoint is dependency-closed (RIO-V007):
// resuming from a frontier with a missing predecessor would replay a task
// whose inputs were never produced. Completed IDs beyond the task table
// are ignored, matching PruneCompleted.
func (c *certifier) validateResume() {
	if c.cfg.Resume == nil {
		return
	}
	for _, id := range c.cfg.Resume.Completed {
		if id < 0 || int(id) >= len(c.g.Tasks) {
			continue
		}
		c.completed[id] = true
	}
	deps := c.g.Dependencies()
	for id := range c.g.Tasks {
		if !c.completed[id] {
			continue
		}
		for _, d := range deps[id] {
			if !c.completed[d] {
				c.addf(analyze.CodeVerifyResume, stf.TaskID(id), analyze.NoID, analyze.NoID,
					"checkpoint is not dependency-closed: completed task %d depends on task %d, which is not completed", id, d)
			}
		}
	}
}

// scanStructure validates worker w's stream micro-op by micro-op:
// recognized opcode, task and data IDs in range. It reports at most one
// RIO-V001 per stream (a corrupt stream cascades) and returns whether the
// stream is structurally sound.
func (c *certifier) scanStructure(w int) bool {
	for k, in := range c.cp.Streams[w] {
		switch {
		case in.Op > stf.OpTermRed:
			c.addf(analyze.CodeVerifyStructure, analyze.NoID, analyze.NoID, stf.WorkerID(w),
				"worker %d stream micro-op %d has unknown opcode %d", w, k, uint8(in.Op))
			return false
		case in.Task < 0 || int(in.Task) >= len(c.g.Tasks):
			c.addf(analyze.CodeVerifyStructure, stf.TaskID(in.Task), analyze.NoID, stf.WorkerID(w),
				"worker %d stream micro-op %d (%s) references task %d, outside [0,%d)", w, k, in.Op, in.Task, len(c.g.Tasks))
			return false
		case in.Op != stf.OpExec && (in.Data < 0 || int(in.Data) >= c.g.NumData):
			c.addf(analyze.CodeVerifyStructure, stf.TaskID(in.Task), in.Data, stf.WorkerID(w),
				"worker %d stream micro-op %d (%s) references data %d, outside [0,%d)", w, k, in.Op, in.Data, c.g.NumData)
			return false
		}
	}
	return true
}

// scanGroups certifies coverage, ownership, order and access-set
// faithfulness of worker w's stream. A task's micro-ops are contiguous
// (Compile emits task by task; PruneCompleted drops whole groups), so the
// stream is parsed as a sequence of per-task groups.
func (c *certifier) scanGroups(w int) {
	stream := c.cp.Streams[w]
	wid := stf.WorkerID(w)
	lastTask := int32(-1)
	execSeq := int32(0)
	for i := 0; i < len(stream); {
		id := stream[i].Task
		j := i
		execs := 0
		for j < len(stream) && stream[j].Task == id {
			if stream[j].Op == stf.OpExec {
				execs++
			}
			j++
		}
		group := stream[i:j]
		i = j
		if c.completed[id] {
			c.addf(analyze.CodeVerifyResume, stf.TaskID(id), analyze.NoID, wid,
				"task %d is completed by the checkpoint but still has %d micro-op(s) in worker %d's stream", id, len(group), w)
			continue
		}
		if id <= lastTask {
			c.addf(analyze.CodeVerifyOrder, stf.TaskID(id), analyze.NoID, wid,
				"worker %d's stream is out of program order: task %d's group appears after task %d's", w, id, lastTask)
		}
		lastTask = id
		t := &c.g.Tasks[id]
		if execs > 0 {
			execSeq++
			c.execCount[id] += execs
			c.execAt[id] = execPos{worker: wid, idx: execSeq}
			if execs > 1 {
				c.dupInGroup[id] = true
				c.addf(analyze.CodeVerifyCoverage, stf.TaskID(id), analyze.NoID, wid,
					"task %d executes %d times within worker %d's stream", id, execs, w)
			}
			if c.owners[id] != wid {
				c.addf(analyze.CodeVerifyOwnership, stf.TaskID(id), analyze.NoID, wid,
					"task %d executes on worker %d but the mapping assigns it to worker %d", id, w, c.owners[id])
			}
			c.checkGroupShape(wid, t, group, expectedOwned(t))
			continue
		}
		if c.owners[id] == wid {
			// The owner's group without an exec: coverage (below) flags
			// the missing execution; the remaining micro-ops are whatever
			// the corruption left behind, so shape-checking them against
			// either template would only add noise.
			continue
		}
		c.checkGroupShape(wid, t, group, expectedForeign(t))
	}
}

// checkGroupShape compares a task group against the sequence the graph
// dictates: same micro-ops in a different order is an order violation
// (RIO-V004), anything else is an access-set mismatch (RIO-V005).
func (c *certifier) checkGroupShape(w stf.WorkerID, t *stf.Task, got, want []stf.Instr) {
	if equalInstrs(got, want) {
		return
	}
	if missing, extra, permuted := multisetDiff(got, want); permuted {
		c.addf(analyze.CodeVerifyOrder, t.ID, analyze.NoID, w,
			"task %d's micro-ops on worker %d are the recorded set but out of sequence (acquires must precede exec, terminates must follow)", t.ID, w)
	} else {
		switch {
		case missing != nil:
			c.addf(analyze.CodeVerifyAccessSet, t.ID, missing.Data, w,
				"task %d's group on worker %d does not match its recorded accesses: missing %s on data %d", t.ID, w, missing.Op, missing.Data)
		case extra != nil:
			c.addf(analyze.CodeVerifyAccessSet, t.ID, extra.Data, w,
				"task %d's group on worker %d does not match its recorded accesses: unexpected %s on data %d", t.ID, w, extra.Op, extra.Data)
		default:
			c.addf(analyze.CodeVerifyAccessSet, t.ID, analyze.NoID, w,
				"task %d's group on worker %d does not match its recorded accesses", t.ID, w)
		}
	}
}

// checkCoverage requires every task the checkpoint does not cover to
// execute exactly once across all streams (RIO-V002).
func (c *certifier) checkCoverage() {
	for id := range c.g.Tasks {
		if c.completed[id] {
			continue
		}
		switch n := c.execCount[id]; {
		case n == 0:
			c.addf(analyze.CodeVerifyCoverage, stf.TaskID(id), analyze.NoID, c.owners[id],
				"task %d is never executed: no stream carries its exec (mapped to worker %d)", id, c.owners[id])
		case n > 1 && !c.dupInGroup[id]:
			// Per-group duplicates were already reported in scanGroups;
			// report here only cross-stream duplicates.
			c.addf(analyze.CodeVerifyCoverage, stf.TaskID(id), analyze.NoID, analyze.NoID,
				"task %d is executed %d times across the streams", id, n)
		}
	}
}

// equalInstrs reports exact micro-op sequence equality.
func equalInstrs(a, b []stf.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// multisetDiff compares two micro-op sequences as multisets. It returns
// the first micro-op present only in want (missing), the first present
// only in got (extra), and whether the two are permutations of each other.
func multisetDiff(got, want []stf.Instr) (missing, extra *stf.Instr, permuted bool) {
	counts := make(map[stf.Instr]int, len(want))
	for _, in := range want {
		counts[in]++
	}
	for i := range got {
		counts[got[i]]--
	}
	for i := range want {
		if counts[want[i]] > 0 {
			missing = &want[i]
			break
		}
	}
	for i := range got {
		if counts[got[i]] < 0 {
			extra = &got[i]
			break
		}
	}
	return missing, extra, missing == nil && extra == nil
}

// expectedOwned re-derives the exec-path micro-ops of a task from the
// graph alone: get_* waits in declared access order, the exec, then
// terminate_* publications in declared access order (Algorithm 1's
// execute path).
func expectedOwned(t *stf.Task) []stf.Instr {
	out := make([]stf.Instr, 0, 2*len(t.Accesses)+1)
	id := int32(t.ID)
	for _, a := range t.Accesses {
		out = append(out, stf.Instr{Op: wantGet(a.Mode), Mode: a.Mode, Data: a.Data, Task: id})
	}
	out = append(out, stf.Instr{Op: stf.OpExec, Task: id})
	for _, a := range t.Accesses {
		out = append(out, stf.Instr{Op: wantTerm(a.Mode), Mode: a.Mode, Data: a.Data, Task: id})
	}
	return out
}

// expectedForeign re-derives the declare-path micro-ops of a foreign
// task.
func expectedForeign(t *stf.Task) []stf.Instr {
	out := make([]stf.Instr, 0, len(t.Accesses))
	id := int32(t.ID)
	for _, a := range t.Accesses {
		out = append(out, stf.Instr{Op: wantDeclare(a.Mode), Mode: a.Mode, Data: a.Data, Task: id})
	}
	return out
}

func wantDeclare(m stf.AccessMode) stf.OpCode {
	switch {
	case m.Writes():
		return stf.OpDeclareWrite
	case m.Commutes():
		return stf.OpDeclareRed
	default:
		return stf.OpDeclareRead
	}
}

func wantGet(m stf.AccessMode) stf.OpCode {
	switch {
	case m.Writes():
		return stf.OpGetWrite
	case m.Commutes():
		return stf.OpGetRed
	default:
		return stf.OpGetRead
	}
}

func wantTerm(m stf.AccessMode) stf.OpCode {
	switch {
	case m.Writes():
		return stf.OpTermWrite
	case m.Commutes():
		return stf.OpTermRed
	default:
		return stf.OpTermRead
	}
}
