package rio

// Runtime decorators with capability preservation.
//
// New composes the engines out of small wrappers: withDeadline bounds every
// run with Options.Timeout, withPreflight analyzes programs before they
// run, withStreaming attaches the per-window Stream fallback. A naive
// wrapper — a struct embedding Runtime — would erase the wrapped engine's
// optional interfaces: a *Engine that is a GraphRunner and a Streamer would
// stop type-asserting to either the moment a Timeout is set. Every
// constructor here therefore re-exposes exactly the optional interfaces the
// wrapped runtime offers (no more — a wrapper must never invent a
// capability its inner runtime lacks), with the decorator's semantics
// applied to the forwarded calls: a deadline wrapper bounds RunGraph like
// Run, a preflight wrapper analyzes a graph before compiling it.

import (
	"context"
	"fmt"
	"time"
)

// withDeadline bounds every run of rt — Run, RunContext and, when rt is a
// GraphRunner, RunGraph/RunGraphContext — with timeout, preserving rt's
// optional interfaces. Stream is forwarded untouched: a streaming session
// applies the timeout per window itself (each window is one bounded
// execution, the session as a whole is unbounded by design).
func withDeadline(rt Runtime, timeout time.Duration) Runtime {
	return preserveCaps(&deadlineRuntime{Runtime: rt, timeout: timeout}, rt)
}

// withPreflight analyzes every program (and, for GraphRunners, every
// graph) before handing it to rt, preserving rt's optional interfaces.
// Stream is forwarded untouched: preflight does not apply to stream
// windows — a window routinely reads data written by an earlier window,
// which single-window analysis would misdiagnose as a read of
// never-written data.
func withPreflight(rt Runtime, o Options) Runtime {
	return preserveCaps(&preflightRuntime{Runtime: rt, opts: o}, rt)
}

// withStreaming ensures rt implements Streamer: natively-streaming
// runtimes pass through unchanged; anything else gains the per-window
// fallback, in which every flushed window executes as one ordinary run of
// base. base is the runtime the windows run on — the deadline-wrapped but
// not preflight-wrapped form, so each window is bounded by Options.Timeout
// without being misanalyzed in isolation.
func withStreaming(rt, base Runtime) Runtime {
	if _, ok := rt.(Streamer); ok {
		return rt
	}
	return preserveCaps(&streamingRuntime{Runtime: rt, base: base}, rt)
}

// preserveCaps masks w down to Runtime plus exactly the optional
// capabilities it can serve: an interface is exposed when the inner
// runtime implements it (the wrapper forwards), or when the wrapper itself
// provides it natively (selfCapable — the streaming fallback's Stream).
// The combinatorial structs are the standard Go answer to the middleware
// interface-erasure problem (compare net/http.ResponseWriter wrappers):
// embedding picks the method sets at compile time, so a type assertion on
// the wrapped form succeeds exactly when it would on the bare engine.
func preserveCaps(w Runtime, inner Runtime) Runtime {
	gr, hasGR := w.(GraphRunner)
	if _, ok := inner.(GraphRunner); !ok {
		hasGR = false
	}
	st, hasST := w.(Streamer)
	if _, ok := inner.(Streamer); !ok {
		if sc, self := w.(selfCapable); !self || !sc.selfStreams() {
			hasST = false
		}
	}
	switch {
	case hasGR && hasST:
		return struct {
			Runtime
			GraphRunner
			Streamer
		}{w, gr, st}
	case hasGR:
		return struct {
			Runtime
			GraphRunner
		}{w, gr}
	case hasST:
		return struct {
			Runtime
			Streamer
		}{w, st}
	}
	return struct{ Runtime }{w}
}

// selfCapable marks wrappers that provide a capability themselves rather
// than forwarding it to the inner runtime.
type selfCapable interface{ selfStreams() bool }

// errNoCapability reports a forwarded capability call whose inner runtime
// lacks the interface. preserveCaps makes these unreachable through New's
// wrapping (the method is masked out), but the wrapper types are exported
// behavior via OpenStream and direct construction in tests, so they degrade
// with an error instead of a panic.
func errNoCapability(name, cap string) error {
	return fmt.Errorf("rio: the wrapped %s runtime does not implement %s", name, cap)
}

// --- deadline decorator: optional-interface forwarding -------------------

// RunGraph bounds the wrapped GraphRunner's compiled-path run with the
// deadline, exactly like Run.
func (d *deadlineRuntime) RunGraph(g *Graph, k Kernel) error {
	return d.RunGraphContext(context.Background(), g, k)
}

// RunGraphContext is RunGraph with cancellation; the earlier of ctx's
// deadline and the wrapper's timeout wins.
func (d *deadlineRuntime) RunGraphContext(ctx context.Context, g *Graph, k Kernel) error {
	gr, ok := d.Runtime.(GraphRunner)
	if !ok {
		return errNoCapability(d.Runtime.Name(), "GraphRunner")
	}
	ctx, cancel := deadlineContext(ctx, d.timeout)
	defer cancel()
	return gr.RunGraphContext(ctx, g, k)
}

// Stream forwards to the wrapped Streamer: the session bounds each window
// with its own timeout (the native backend snapshots Options.Timeout at
// open), so the wrapper adds nothing per call.
func (d *deadlineRuntime) Stream(numData int, opts StreamOptions) (*Stream, error) {
	st, ok := d.Runtime.(Streamer)
	if !ok {
		return nil, errNoCapability(d.Runtime.Name(), "Streamer")
	}
	return st.Stream(numData, opts)
}

// --- preflight decorator: optional-interface forwarding ------------------

// RunGraph analyzes g before handing it to the wrapped GraphRunner.
func (p *preflightRuntime) RunGraph(g *Graph, k Kernel) error {
	return p.RunGraphContext(context.Background(), g, k)
}

// RunGraphContext is RunGraph with cancellation.
func (p *preflightRuntime) RunGraphContext(ctx context.Context, g *Graph, k Kernel) error {
	gr, ok := p.Runtime.(GraphRunner)
	if !ok {
		return errNoCapability(p.Runtime.Name(), "GraphRunner")
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("rio: run not started: %w", context.Cause(ctx))
	}
	if err := preflightGraph(g, p.opts, p.Runtime.NumWorkers()); err != nil {
		return err
	}
	return gr.RunGraphContext(ctx, g, k)
}

// Stream forwards to the wrapped Streamer; preflight does not apply to
// stream windows (see withPreflight).
func (p *preflightRuntime) Stream(numData int, opts StreamOptions) (*Stream, error) {
	st, ok := p.Runtime.(Streamer)
	if !ok {
		return nil, errNoCapability(p.Runtime.Name(), "Streamer")
	}
	return st.Stream(numData, opts)
}

// --- streaming fallback --------------------------------------------------

// streamingRuntime attaches the Streamer capability to a runtime that has
// none: each flushed window runs as one ordinary synchronous run of base.
type streamingRuntime struct {
	Runtime
	base Runtime
}

func (s *streamingRuntime) selfStreams() bool { return true }

// Stream opens a fallback streaming session: windowed submission, epoch
// barriers and sticky errors exactly like the native path, with each
// window executing as one run of the underlying engine (full unroll,
// dependency derivation and worker fan-out per window — the cost profile
// the pipeline ablation measures against RIO's persistent session).
func (s *streamingRuntime) Stream(numData int, opts StreamOptions) (*Stream, error) {
	return newRuntimeStream(s.base, numData, opts)
}
