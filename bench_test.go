// Benchmarks regenerating every table and figure of the paper's evaluation
// as testing.B targets. Each benchmark iteration executes one full run of
// the corresponding workload; custom metrics expose the paper's quantities
// (ns/task, efficiency factors, model-checking state counts).
//
// The workload sizes are laptop-scale; cmd/rio-bench exposes the same
// experiments with tunable sizes and renders the full sweeps.
package rio_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"rio"
	"rio/internal/graphs"
	"rio/internal/hpl"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/spec"
	"rio/internal/stf"
)

const benchWorkers = 4

func newRuntime(b *testing.B, model rio.Model, workers int, m rio.Mapping) rio.Runtime {
	b.Helper()
	rt, err := rio.New(rio.Options{Model: model, Workers: workers, Mapping: m})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// runCounter benchmarks one engine executing g with the synthetic counter
// kernel at the given task size, reporting ns/task.
func runCounter(b *testing.B, model rio.Model, g *rio.Graph, m rio.Mapping, size uint64) {
	rt := newRuntime(b, model, benchWorkers, m)
	cells := kernels.NewCells(benchWorkers)
	prog := rio.Replay(g, graphs.CounterKernel(cells, size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(g.NumData, prog); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perTask := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(g.Tasks))
	b.ReportMetric(perTask, "ns/task")
}

// BenchmarkFig6 — Figure 6: fixed number of independent counter tasks,
// centralized vs RIO, across task sizes. The centralized engine's ns/task
// floors at its per-task management cost; RIO's keeps shrinking.
func BenchmarkFig6(b *testing.B) {
	g := graphs.Independent(2048)
	for _, size := range []uint64{100, 1000, 10000} {
		for _, model := range []rio.Model{rio.InOrder, rio.Centralized} {
			b.Run(fmt.Sprintf("size=%d/%s", size, model), func(b *testing.B) {
				runCounter(b, model, g, rio.CyclicMapping(benchWorkers), size)
			})
		}
	}
}

// BenchmarkFig7 — Figure 7: weak scaling of the task-flow unrolling. Tasks
// per worker fixed; the RIO total grows with p (every worker unrolls
// everything) while the pruned variant stays flat.
func BenchmarkFig7(b *testing.B) {
	const perWorker = 2048
	const size = 256
	for _, p := range []int{1, 2, 4, 6} {
		g := graphs.Independent(perWorker * p)
		m := sched.Cyclic(p)
		cells := kernels.NewCells(p)
		kern := graphs.CounterKernel(cells, size)
		variants := []struct {
			name string
			prog rio.Program
		}{
			{"full", rio.Replay(g, kern)},
			{"pruned", sched.PrunedReplay(g, kern, sched.Relevant(g, m, p))},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("p=%d/%s", p, v.name), func(b *testing.B) {
				rt := newRuntime(b, rio.InOrder, p, m)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rt.Run(g.NumData, v.prog); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// fig8Case builds one of the four §5.1 experiments at benchmark scale.
func fig8Case(b *testing.B, exp int) (*rio.Graph, rio.Mapping) {
	b.Helper()
	switch exp {
	case 1:
		return graphs.Independent(2048), sched.Cyclic(benchWorkers)
	case 2:
		return graphs.RandomDeps(2048, 128, 2, 1, 42), sched.Cyclic(benchWorkers)
	case 3:
		g := graphs.GEMM(12) // 1728 tasks
		return g, sched.OwnerComputes(g, sched.NewGrid2D(benchWorkers))
	case 4:
		g := graphs.LU(14) // 1911 tasks
		return g, sched.OwnerComputes(g, sched.NewGrid2D(benchWorkers))
	}
	b.Fatalf("unknown experiment %d", exp)
	return nil, nil
}

// BenchmarkFig8 — Figure 8: the four experiment task graphs under both
// engines at two granularities; the reported e_p and e_r reproduce the
// figure's efficiency decomposition (e_g = e_l = 1 by construction of the
// synthetic kernel).
func BenchmarkFig8(b *testing.B) {
	for exp := 1; exp <= 4; exp++ {
		g, m := fig8Case(b, exp)
		for _, size := range []uint64{200, 5000} {
			for _, model := range []rio.Model{rio.InOrder, rio.Centralized} {
				name := fmt.Sprintf("exp%d/size=%d/%s", exp, size, model)
				b.Run(name, func(b *testing.B) {
					rt := newRuntime(b, model, benchWorkers, m)
					cells := kernels.NewCells(benchWorkers)
					prog := rio.Replay(g, graphs.CounterKernel(cells, size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := rt.Run(g.NumData, prog); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					st := rt.Stats()
					task, idle, _ := st.Cumulative()
					total := st.TotalCumulative()
					if task+idle > 0 && total > 0 {
						b.ReportMetric(float64(task)/float64(task+idle), "e_p")
						b.ReportMetric(float64(task+idle)/float64(total), "e_r")
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
				})
			}
		}
	}
}

// BenchmarkFig3 — Figure 3: the sequential tile-kernel efficiency origin of
// the granularity effect — pure kernel time per tile size, no runtime.
func BenchmarkFig3(b *testing.B) {
	const n = 128
	for _, tile := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("b=%d", tile), func(b *testing.B) {
			a, _ := kernels.NewTiled(n, tile)
			bm, _ := kernels.NewTiled(n, tile)
			c, _ := kernels.NewTiled(n, tile)
			kernels.DiagDominant(a, 1)
			kernels.DiagDominant(bm, 2)
			nt := n / tile
			flops := 2.0 * float64(n) * float64(n) * float64(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for ii := 0; ii < nt; ii++ {
					for jj := 0; jj < nt; jj++ {
						for kk := 0; kk < nt; kk++ {
							kernels.GemmTile(c.Tile(ii, jj), a.Tile(ii, kk), bm.Tile(kk, jj), tile)
						}
					}
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds() / float64(b.N)
			if sec > 0 {
				b.ReportMetric(flops/sec/1e9, "GFLOPS")
			}
		})
	}
}

// BenchmarkFig2And4 — Figures 2 and 4: the tiled matrix product under the
// parallel runtimes across tile sizes (wall time = Fig 2; the e_p/e_r
// metrics = the runtime-side factors of Fig 4).
func BenchmarkFig2And4(b *testing.B) {
	const n = 128
	for _, tile := range []int{8, 16, 32, 64} {
		nt := n / tile
		g := graphs.GEMM(nt)
		m := sched.OwnerComputes(g, sched.NewGrid2D(benchWorkers))
		for _, model := range []rio.Model{rio.InOrder, rio.Centralized} {
			b.Run(fmt.Sprintf("b=%d/%s", tile, model), func(b *testing.B) {
				a, _ := kernels.NewTiled(n, tile)
				bm, _ := kernels.NewTiled(n, tile)
				c, _ := kernels.NewTiled(n, tile)
				kernels.DiagDominant(a, 1)
				kernels.DiagDominant(bm, 2)
				kern := graphs.GEMMKernel(a, bm, c)
				rt := newRuntime(b, model, benchWorkers, m)
				prog := rio.Replay(g, kern)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rt.Run(g.NumData, prog); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := rt.Stats()
				task, idle, _ := st.Cumulative()
				if total := st.TotalCumulative(); total > 0 && task+idle > 0 {
					b.ReportMetric(float64(task)/float64(task+idle), "e_p")
					b.ReportMetric(float64(task+idle)/float64(total), "e_r")
				}
			})
		}
	}
}

// BenchmarkTable1 — Table 1: model-checking cost of the STF and
// Run-In-Order specifications on tiled-LU instances; the state counts are
// reported as metrics.
func BenchmarkTable1(b *testing.B) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}, {3, 3}} {
		g := graphs.LURect(sz[0], sz[1])
		mod, err := spec.NewModel(g, 2, sched.Cyclic(2))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dx%d/STF", sz[0], sz[1]), func(b *testing.B) {
			var res *spec.Result
			for i := 0; i < b.N; i++ {
				res = mod.CheckSTF()
			}
			if !res.OK() {
				b.Fatalf("violations: %v", res.Violations)
			}
			b.ReportMetric(float64(res.Distinct), "states")
			b.ReportMetric(float64(res.Generated), "generated")
		})
		b.Run(fmt.Sprintf("%dx%d/RIO", sz[0], sz[1]), func(b *testing.B) {
			var res *spec.Result
			for i := 0; i < b.N; i++ {
				res = mod.CheckRIO(spec.RIOOptions{})
			}
			if !res.OK() {
				b.Fatalf("violations: %v", res.Violations)
			}
			b.ReportMetric(float64(res.Distinct), "states")
			b.ReportMetric(float64(res.Generated), "generated")
		})
	}
}

// BenchmarkHPL — the paper's motivating application (§1): blocked LU with
// partial pivoting, whose panel work is inherently fine-grained. Narrower
// panels raise the fine-grained share; RIO's advantage grows with it.
func BenchmarkHPL(b *testing.B) {
	const n = 96
	for _, pw := range []int{8, 24} {
		f, err := hpl.NewFlow(n, pw)
		if err != nil {
			b.Fatal(err)
		}
		for _, model := range []rio.Model{rio.InOrder, rio.Centralized} {
			b.Run(fmt.Sprintf("b=%d/%s", pw, model), func(b *testing.B) {
				var kerr error
				kern := f.Kernel(func(e error) { kerr = e })
				rt := newRuntime(b, model, benchWorkers, f.ColumnMapping(benchWorkers))
				prog := rio.Replay(f.Graph, kern)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					f.A.FillRandom(uint64(i) + 1)
					b.StartTimer()
					if err := rt.Run(f.Graph.NumData, prog); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if kerr != nil {
					b.Fatal(kerr)
				}
				b.ReportMetric(f.FLOPs()/(b.Elapsed().Seconds()/float64(b.N))/1e9, "GFLOPS")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(f.Graph.Tasks)), "ns/task")
			})
		}
	}
}

// BenchmarkPerTaskOverhead isolates the runtime cost the whole paper is
// about: per-task management time with empty task bodies (the ablation
// behind cost models (1) and (2)).
func BenchmarkPerTaskOverhead(b *testing.B) {
	g := graphs.Independent(4096)
	noop := func(*stf.Task, stf.WorkerID) {}
	for _, model := range []rio.Model{rio.InOrder, rio.Centralized, rio.CentralizedWS, rio.Sequential} {
		b.Run(model.String(), func(b *testing.B) {
			workers := benchWorkers
			if model == rio.Sequential {
				workers = 1
			}
			rt := newRuntime(b, model, workers, rio.CyclicMapping(workers))
			prog := rio.Replay(g, noop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Run(g.NumData, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
}

// BenchmarkGuardOverhead measures the per-task price of the
// replay-divergence guard (a few private multiply-xor steps per submitted
// task, plus one mutexed checkpoint per 256 tasks): the same empty-body
// workload with the guard on (the default) and off (NoGuard — the
// NoAccounting-style opt-out for overhead micro-measurements).
func BenchmarkGuardOverhead(b *testing.B) {
	g := graphs.Independent(4096)
	noop := func(*stf.Task, stf.WorkerID) {}
	for _, variant := range []struct {
		name    string
		noGuard bool
	}{{"guard=on", false}, {"guard=off", true}} {
		b.Run(variant.name, func(b *testing.B) {
			rt, err := rio.New(rio.Options{
				Model:   rio.InOrder,
				Workers: benchWorkers,
				Mapping: rio.CyclicMapping(benchWorkers),
				NoGuard: variant.noGuard,
			})
			if err != nil {
				b.Fatal(err)
			}
			prog := rio.Replay(g, noop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Run(g.NumData, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
}

// BenchmarkCompiledReplay — the replay term n·t_r of cost model (2), paid
// per run under closure replay and hoisted to compile time by the
// compiled fast path. The Fig 7 weak-scaling workload (independent tasks,
// cyclic mapping) with empty bodies makes the run almost pure replay
// overhead, so ns/task compares t_r directly across the variants.
func BenchmarkCompiledReplay(b *testing.B) {
	// Paper-scale flow (§5.2 uses 32768 tasks per worker): long enough
	// that replay work, not the per-run goroutine spawn, dominates.
	g := graphs.Independent(32768)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := rio.CyclicMapping(benchWorkers)
	perTask := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
	}

	// NoAccounting everywhere: two time.Now calls per executed task would
	// otherwise floor every variant at the clock cost (that is what the
	// option is for — overhead micro-measurements).
	b.Run("closure", func(b *testing.B) {
		rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: benchWorkers, Mapping: m, NoAccounting: true})
		if err != nil {
			b.Fatal(err)
		}
		prog := rio.Replay(g, noop)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.Run(g.NumData, prog); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		perTask(b)
	})
	for _, v := range []struct {
		name  string
		prune bool
	}{{"compiled", false}, {"compiled-pruned", true}} {
		b.Run(v.name, func(b *testing.B) {
			e, err := rio.NewEngine(rio.Options{Workers: benchWorkers, Mapping: m, Prune: v.prune, NoAccounting: true})
			if err != nil {
				b.Fatal(err)
			}
			// Compile outside the timed region: the point of the fast
			// path is that iterative workloads pay unrolling once.
			if err := e.RunGraph(g, noop); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.RunGraph(g, noop); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perTask(b)
		})
	}
}

// BenchmarkSyncContention — the synchronization ablation's contended shape
// as a testing.B target (and CI perf-regression gate): rounds of one writer
// followed by benchWorkers parallel readers of a single data object, so
// every task blocks on a hand-off through one shared cell and ns/task is
// almost entirely the phase-3 wait path. Sub-benchmarks sweep the wait
// policies; `rio-bench sync` runs the same shape with CPU-time columns.
func BenchmarkSyncContention(b *testing.B) {
	g := graphs.ReadersWriter(256, benchWorkers)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := rio.CyclicMapping(benchWorkers)
	for _, pol := range []rio.WaitPolicy{rio.WaitAdaptive, rio.WaitSpin, rio.WaitPark, rio.WaitSleep} {
		b.Run(pol.String(), func(b *testing.B) {
			rt, err := rio.New(rio.Options{
				Model: rio.InOrder, Workers: benchWorkers, Mapping: m,
				WaitPolicy: pol, NoAccounting: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			prog := rio.Replay(g, noop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Run(g.NumData, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
}

// BenchmarkDeclareOverhead measures the paper's headline micro-cost: the
// per-task price a RIO worker pays for a task it does NOT execute (§3.3
// promises one or two private-memory writes per dependency). A single
// worker owns every task; the others only declare.
func BenchmarkDeclareOverhead(b *testing.B) {
	g := graphs.RandomDeps(4096, 64, 2, 1, 7)
	noop := func(*stf.Task, stf.WorkerID) {}
	rt := newRuntime(b, rio.InOrder, benchWorkers, sched.Single(0))
	prog := rio.Replay(g, noop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(g.NumData, prog); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Stats describe the last run; each run declares the same count.
	if d := rt.Stats().Declared(); d > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(d), "ns/declare")
	}
}

// BenchmarkHookOverhead measures the cost of the lifecycle-hook API on the
// replay hot path. The nil-hooks variant is the baseline every existing
// caller pays (one pointer test per hook site); "empty" installs a Hooks
// struct with no callbacks set (per-callback nil tests); "counting" installs
// minimal atomic counters in the per-task callbacks, the cheapest useful
// instrumentation. Independent tasks with empty bodies and NoAccounting make
// per-task engine overhead the entire signal, so ns/task deltas bound the
// hook tax directly.
func BenchmarkHookOverhead(b *testing.B) {
	g := graphs.Independent(32768)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := rio.CyclicMapping(benchWorkers)
	var started, ended atomic.Int64
	for _, v := range []struct {
		name  string
		hooks *rio.Hooks
	}{
		{"nil-hooks", nil},
		{"empty-hooks", &rio.Hooks{}},
		{"counting-hooks", &rio.Hooks{
			OnTaskStart: func(rio.WorkerID, rio.TaskID) { started.Add(1) },
			OnTaskEnd:   func(rio.WorkerID, rio.TaskID) { ended.Add(1) },
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			rt, err := rio.New(rio.Options{
				Model: rio.InOrder, Workers: benchWorkers, Mapping: m,
				NoAccounting: true, Hooks: v.hooks,
			})
			if err != nil {
				b.Fatal(err)
			}
			prog := rio.Replay(g, noop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Run(g.NumData, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
}

// BenchmarkRetryOverhead bounds the hot-path tax of the fault-tolerance
// machinery. "nil-policy" is what every pre-existing caller pays after
// this feature landed: one pointer test per task (it must stay
// indistinguishable from the historical per-task overhead — the CI
// perf-regression gate holds it to the baseline). "retry-armed" installs
// a policy plus snapshotter on a fault-free run, pricing the always-taken
// snapshot/bookkeeping path; "checkpoint" prices completed-task tracking
// alone. Independent empty-body tasks with NoAccounting make per-task
// engine overhead the entire signal.
func BenchmarkRetryOverhead(b *testing.B) {
	g := graphs.Independent(32768)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := rio.CyclicMapping(benchWorkers)
	// Empty-body tasks write nothing, so the armed policy needs no real
	// snapshot storage; the Snapshotter still prices the capability test.
	snaps := rio.SnapshotFuncs{Save: func(rio.DataID) func() { return func() {} }}
	for _, v := range []struct {
		name string
		opts rio.Options
	}{
		{"nil-policy", rio.Options{}},
		{"checkpoint", rio.Options{Checkpoint: true}},
		{"retry-armed", rio.Options{Retry: &rio.RetryPolicy{MaxAttempts: 3}, Snapshots: snaps}},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := v.opts
			opts.Model = rio.InOrder
			opts.Workers = benchWorkers
			opts.Mapping = m
			opts.NoAccounting = true
			rt, err := rio.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			prog := rio.Replay(g, noop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Run(g.NumData, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
}

// BenchmarkStealOverhead bounds the hot-path tax of the work-stealing
// machinery when nobody steals. "nil-policy" is what every pre-existing
// caller pays after the hybrid model landed: one pointer test per task
// (the CI perf-regression gate holds it to the historical baseline).
// "steal-armed" installs a policy on a *balanced* cyclic mapping, so no
// worker ever finds a victim worth robbing: closure replay prices the
// candidate-ring recording of foreign tasks, compiled replay prices the
// (one-off) steal-metadata build plus the idle-probe path. Independent
// empty-body tasks with NoAccounting make per-task engine overhead the
// entire signal.
func BenchmarkStealOverhead(b *testing.B) {
	g := graphs.Independent(32768)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := rio.CyclicMapping(benchWorkers)
	pol := &rio.StealPolicy{}
	for _, v := range []struct {
		name     string
		compiled bool
		steal    *rio.StealPolicy
	}{
		{"nil-policy", false, nil},
		{"steal-armed", false, pol},
		{"nil-policy-compiled", true, nil},
		{"steal-armed-compiled", true, pol},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := rio.Options{
				Workers: benchWorkers, Mapping: m, Steal: v.steal,
				NoAccounting: true,
			}
			if v.compiled {
				e, err := rio.NewEngine(opts)
				if err != nil {
					b.Fatal(err)
				}
				// Compile (and build steal metadata) outside the timed
				// region, as iterative workloads do.
				if err := e.RunGraph(g, noop); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.RunGraph(g, noop); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				opts.Model = rio.InOrder
				rt, err := rio.New(opts)
				if err != nil {
					b.Fatal(err)
				}
				prog := rio.Replay(g, noop)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rt.Run(g.NumData, prog); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
}

// BenchmarkVerifyOverhead prices Options.Verify, the translation
// validator run at every Engine cache miss. The steady-state cost must be
// zero — certification happens once, at the miss, and cache hits replay
// untouched streams — so the off/on sub-benchmarks are primed with one
// RunGraph before timing and should report identical ns/task. The
// certify-once sub-benchmark times the certificate itself (rio.Verify on
// a freshly compiled program), the one-off price a miss pays.
func BenchmarkVerifyOverhead(b *testing.B) {
	g := graphs.Independent(32768)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := rio.CyclicMapping(benchWorkers)
	for _, v := range []struct {
		name   string
		verify bool
	}{{"off", false}, {"on", true}} {
		b.Run(v.name, func(b *testing.B) {
			e, err := rio.NewEngine(rio.Options{
				Workers: benchWorkers, Mapping: m, Prune: true,
				Verify: v.verify, NoAccounting: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Prime the cache (and pay certification) outside the timed
			// region; the loop then measures pure cache-hit replay.
			if err := e.RunGraph(g, noop); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.RunGraph(g, noop); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
		})
	}
	b.Run("certify-once", func(b *testing.B) {
		cp, err := rio.Compile(g, benchWorkers, m, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep := rio.Verify(g, cp, m, nil); len(rep.Findings) != 0 {
				b.Fatal("clean program rejected")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(g.Tasks)), "ns/task")
	})
}

// BenchmarkStreamPipeline — the streaming steady state as a CI
// perf-regression gate: one window of a fixed shape (chains of RW tasks,
// chain-affine mapping) flushed per iteration through a long-lived
// session, so ns/task is the per-window protocol cost — epoch barrier,
// state recycle and replay — with the shape compiled once before the
// timer starts. The variants mirror `rio-bench pipeline`: the compiled
// shape-cache hit path, closure replay of every window (NoCompile), and
// the centralized baseline's per-window fallback run.
func BenchmarkStreamPipeline(b *testing.B) {
	const (
		chains   = 32
		chainLen = 8
	)
	noop := func(*stf.Task, stf.WorkerID) {}
	m := func(id rio.TaskID) rio.WorkerID { return rio.WorkerID(int(id) / chainLen % benchWorkers) }
	window := func(s *rio.Stream) {
		for c := 0; c < chains; c++ {
			for l := 0; l < chainLen; l++ {
				s.Task(0, c, l, 0, rio.RW(rio.DataID(c)))
			}
		}
	}
	for _, v := range []struct {
		name      string
		model     rio.Model
		noCompile bool
	}{
		{"stream-compiled", rio.InOrder, false},
		{"stream-closure", rio.InOrder, true},
		{"fallback-centralized", rio.Centralized, false},
	} {
		b.Run(v.name, func(b *testing.B) {
			rt, err := rio.New(rio.Options{
				Model: v.model, Workers: benchWorkers, Mapping: m, NoAccounting: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := rio.OpenStream(rt, chains, rio.StreamOptions{
				MaxWindow: -1, NoCompile: v.noCompile,
				Kernel: noop,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// One window outside the timed region compiles and caches the
			// shape; the loop measures the steady state.
			window(s)
			if err := s.Drain(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				window(s)
				if err := s.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(chains*chainLen), "ns/task")
		})
	}
}
