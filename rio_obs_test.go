package rio_test

import (
	"errors"
	"expvar"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rio"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/stf"
)

// New with the InOrder model must return the caching engine: a Runtime
// that also runs recorded graphs through the compiled fast path.
func TestNewInOrderIsGraphRunner(t *testing.T) {
	rt, err := rio.New(rio.Options{Workers: 2, Timeout: time.Minute, Preflight: rio.PreflightAccess})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "rio" {
		t.Errorf("Name() = %q, want \"rio\"", rt.Name())
	}
	gr, ok := rt.(rio.GraphRunner)
	if !ok {
		t.Fatal("New(InOrder) does not implement GraphRunner")
	}
	g := graphs.Wavefront(4, 4)
	var ran atomic.Int64
	if err := gr.RunGraph(g, func(*rio.Task, rio.WorkerID) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != int64(len(g.Tasks)) {
		t.Errorf("graph run executed %d tasks, want %d", got, len(g.Tasks))
	}
	// Other models stay plain Runtimes.
	crt, err := rio.New(rio.Options{Model: rio.Centralized, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := crt.(rio.GraphRunner); ok {
		t.Error("centralized runtime unexpectedly implements GraphRunner")
	}
}

// The caching engine must apply Preflight to graphs at compile time.
func TestEnginePreflightRejectsGraph(t *testing.T) {
	e, err := rio.NewEngine(rio.Options{Workers: 2, Preflight: rio.PreflightAccess})
	if err != nil {
		t.Fatal(err)
	}
	g := stf.NewGraph("bad", 1)
	g.Add(0, 0, 0, 0, stf.R(7)) // data 7 out of range for NumData=1
	err = e.RunGraph(g, func(*rio.Task, rio.WorkerID) {})
	var pf *rio.PreflightError
	if !errors.As(err, &pf) {
		t.Fatalf("want *rio.PreflightError for a defective graph, got %v", err)
	}
}

// Progress must be reachable through the Runtime interface for every
// model, including decorated runtimes (Timeout/Preflight wrappers).
func TestProgressThroughPublicAPI(t *testing.T) {
	g := graphs.Wavefront(4, 4)
	for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.CentralizedWS, rio.CentralizedPrio, rio.Sequential} {
		rt, err := rio.New(rio.Options{Model: m, Workers: 2, Timeout: time.Minute, Preflight: rio.PreflightAccess})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if pr := rt.Progress(); pr.Workers != nil {
			t.Errorf("%v: non-zero Progress before the first run", m)
		}
		if err := enginetest.Check(rt, g); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pr := rt.Progress()
		if pr.Running {
			t.Errorf("%v: Running after the run returned", m)
		}
		if got, want := pr.Executed(), int64(len(g.Tasks)); got != want {
			t.Errorf("%v: Progress.Executed = %d, want %d", m, got, want)
		}
	}
}

func TestMetricsHandlerServesExposition(t *testing.T) {
	rt, err := rio.New(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := graphs.Wavefront(4, 4)
	if err := enginetest.Check(rt, g); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rio.MetricsHandler(rt))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"rio_run_running 0", "rio_tasks_executed_total", "rio_wait_duration_seconds_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q\n%s", want, body)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	rt, err := rio.New(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := graphs.Wavefront(4, 4)
	if err := enginetest.Check(rt, g); err != nil {
		t.Fatal(err)
	}
	rio.PublishExpvar("rio_test_progress", rt)
	v := expvar.Get("rio_test_progress")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if s := v.String(); !strings.Contains(s, "\"executed\"") {
		t.Errorf("expvar JSON missing executed counters: %s", s)
	}
}

func TestLabelKernelsPassesThrough(t *testing.T) {
	g := graphs.Wavefront(4, 4)
	rt, err := rio.New(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	k := rio.LabelKernels(func(*rio.Task, rio.WorkerID) { ran.Add(1) }, func(int) string { return "wave" })
	if err := rt.Run(g.NumData, rio.Replay(g, k)); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != int64(len(g.Tasks)) {
		t.Errorf("labeled kernel ran %d times, want %d", got, len(g.Tasks))
	}
}

// Hooks installed through the public Options must fire on every model.
func TestHooksThroughPublicAPI(t *testing.T) {
	g := graphs.Wavefront(4, 4)
	for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		var starts, ends atomic.Int64
		var runs atomic.Int64
		rt, err := rio.New(rio.Options{Model: m, Workers: 2, Hooks: &rio.Hooks{
			OnRunStart:  func(int, int) { runs.Add(1) },
			OnTaskStart: func(rio.WorkerID, rio.TaskID) { starts.Add(1) },
			OnTaskEnd:   func(rio.WorkerID, rio.TaskID) { ends.Add(1) },
		}})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := enginetest.Check(rt, g); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Check runs the engine once (plus a sequential golden run on a
		// separate engine): exactly one run, one hook pair per task.
		if runs.Load() != 1 {
			t.Errorf("%v: OnRunStart fired %d times, want 1", m, runs.Load())
		}
		if starts.Load() != int64(len(g.Tasks)) || starts.Load() != ends.Load() {
			t.Errorf("%v: task hooks fired %d/%d, want %d/%d", m, starts.Load(), ends.Load(), len(g.Tasks), len(g.Tasks))
		}
	}
}
