// Command rio-vet is the preflight static analyzer of the runtime: it
// records a task flow (no task body runs) and vets it with the pass
// pipeline of internal/analyze — access lint, mapping analysis,
// determinism lint and bounded spec conformance — reporting findings
// with stable codes and severities.
//
// With -verify, the flow is additionally compiled (pruned and unpruned)
// for the given mapping and worker count, and the streams are certified
// by the translation validator (internal/verify): coverage, program
// order, ownership, pruning soundness and the static happens-before
// certificate, reported as RIO-V00x findings.
//
//	rio-vet -workload lu -size 4 -workers 4
//	rio-vet -workload wavefront -size 8 -workers 4 -mapping single:0
//	rio-vet -graph flow.json -workers 8 -json
//	rio-vet -workload cholesky -size 4 -verify
//	rio-vet -workload nondet
//
// The exit status is 0 when the flow is clean, 1 when findings at or
// above -fail-on were reported, and 2 on usage errors. With -json the
// report is machine-readable; the same analysis runs inside the library
// via rio.Options.Preflight and rio.Options.Verify.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rio/internal/analyze"
	"rio/internal/sched"
	"rio/internal/server/ingest"
	"rio/internal/stf"
	"rio/internal/verify"
)

func main() {
	reject, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rio-vet:", err)
		os.Exit(2)
	}
	if reject {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (reject bool, err error) {
	fs := flag.NewFlagSet("rio-vet", flag.ContinueOnError)
	workload := fs.String("workload", "lu", "task flow to vet: lu | cholesky | gemm | wavefront | chain | random | nondet (a nondeterminism demo)")
	size := fs.Int("size", 3, "workload size (tiles / grid side / task count)")
	seed := fs.Int64("seed", 1, "seed of the random workload")
	graphFile := fs.String("graph", "", "vet a task flow from a JSON file (as written by rio-graph) instead of a named workload")
	workers := fs.Int("workers", 4, "worker count the flow will run with")
	mapSpec := fs.String("mapping", "cyclic", "static mapping: cyclic | block | blockcyclic:B | single:W | owner2d")
	passSpec := fs.String("passes", "all", "comma-separated passes: access,mapping,determinism,spec,retry (or all)")
	replays := fs.Int("replays", analyze.DefaultReplays, "record-mode replays of the determinism lint")
	specTasks := fs.Int("spec-tasks", analyze.DefaultSpecTaskLimit, "task-count bound of the spec-conformance pass")
	retry := fs.Bool("retry", false, "vet the flow as running under a retry policy (arms the retry pass)")
	snapshottable := fs.Bool("snapshottable", false, "assume every data object is snapshottable (default: none, matching a run without rio.Options.Snapshots)")
	writeSetLimit := fs.Int("retry-write-set", analyze.DefaultRetryWriteSetLimit, "per-task snapshotted-object count above which the retry pass warns")
	doVerify := fs.Bool("verify", false, "compile the flow (pruned and unpruned) and certify the streams against the graph (translation validation, RIO-V00x findings)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	failOn := fs.String("fail-on", "warning", "lowest severity that makes the exit status 1: info | warning | error")
	minShow := fs.String("show", "info", "lowest severity printed in the human report")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	failSev, err := analyze.ParseSeverity(*failOn)
	if err != nil {
		return false, err
	}
	showSev, err := analyze.ParseSeverity(*minShow)
	if err != nil {
		return false, err
	}
	passes, err := parsePasses(*passSpec)
	if err != nil {
		return false, err
	}

	// Graph loading, mapping resolution and instance validation go
	// through internal/server/ingest — the same path a rio-serve
	// submission takes, so a flow this tool vets clean is accepted by
	// the server byte-for-byte and vice versa.
	var (
		g       *stf.Graph
		numData int
		prog    stf.Program
		mapping stf.Mapping
	)
	switch {
	case *graphFile != "":
		g, err = ingest.LoadGraphFile(*graphFile)
		if err != nil {
			return false, err
		}
	case *workload == "nondet":
		numData, prog = analyze.NondetDemo(1)
	default:
		g, err = ingest.Workload(*workload, *size, *seed)
		if err != nil {
			return false, err
		}
	}
	if g != nil {
		numData = g.NumData
		prog = stf.Replay(g, nil)
	}
	// The mapping resolves through the wire-format grammar only: strict
	// instance validation (out-of-range mappings and the like) stays the
	// mapping pass's job, reported as RIO-M00x findings with exit 1 —
	// not a usage error — so seeded defects vet as defects.
	if mapping, err = ingest.BuildMapping(*mapSpec, g, *workers); err != nil {
		return false, err
	}
	cfg := analyze.Config{
		Passes:             passes,
		Workers:            *workers,
		Mapping:            mapping,
		InOrder:            true,
		Replays:            *replays,
		SpecTaskLimit:      *specTasks,
		Retry:              *retry,
		RetryWriteSetLimit: *writeSetLimit,
	}
	if *snapshottable {
		cfg.Snapshottable = func(stf.DataID) bool { return true }
	}
	report, _ := analyze.Program(numData, prog, cfg)

	if *doVerify {
		if g == nil {
			return false, fmt.Errorf("-verify needs a recorded graph to certify against (workload %q records none)", *workload)
		}
		for _, prune := range []bool{false, true} {
			var rel [][]bool
			if prune {
				rel = sched.Relevant(g, mapping, *workers)
			}
			cp, err := stf.Compile(g, mapping, *workers, rel)
			if err != nil {
				return false, err
			}
			vrep := verify.Certify(g, cp, verify.Config{Mapping: mapping})
			report.Add(vrep.Findings...)
		}
		report.Finish()
	}

	if *jsonOut {
		if err := report.WriteJSON(out); err != nil {
			return false, err
		}
	} else if err := report.WriteText(out, showSev); err != nil {
		return false, err
	}
	return report.CountAtLeast(failSev) > 0, nil
}

// parsePasses parses the -passes flag.
func parsePasses(s string) (analyze.Passes, error) {
	var p analyze.Passes
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "all":
			p |= analyze.PassAll
		case "access":
			p |= analyze.PassAccess
		case "mapping":
			p |= analyze.PassMapping
		case "determinism":
			p |= analyze.PassDeterminism
		case "spec":
			p |= analyze.PassSpec
		case "retry":
			p |= analyze.PassRetry
		case "":
		default:
			return 0, fmt.Errorf("unknown pass %q (want access|mapping|determinism|spec|retry|all)", name)
		}
	}
	if p == 0 {
		return 0, fmt.Errorf("no passes selected")
	}
	return p, nil
}
