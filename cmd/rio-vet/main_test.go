package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rio/internal/analyze"
	"rio/internal/stf"
)

// writeGraph serializes a graph into a temp file and returns its path.
func writeGraph(t *testing.T, g *stf.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flow.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// vetJSON runs rio-vet with -json and decodes the report.
func vetJSON(t *testing.T, args ...string) (*analyze.Report, bool) {
	t.Helper()
	var buf bytes.Buffer
	reject, err := run(append(args, "-json"), &buf)
	if err != nil {
		t.Fatalf("rio-vet %v: %v", args, err)
	}
	var rep analyze.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, buf.String())
	}
	return &rep, reject
}

// The five acceptance defects, each detected with a distinct code.

func TestVetDetectsUninitializedRead(t *testing.T) {
	g := stf.NewGraph("uninit", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	rep, reject := vetJSON(t, "-graph", writeGraph(t, g))
	if !rep.Has(analyze.CodeUninitRead) || !reject {
		t.Fatalf("want %s + reject, got reject=%v findings=%+v", analyze.CodeUninitRead, reject, rep.Findings)
	}
}

func TestVetDetectsDeadWrite(t *testing.T) {
	g := stf.NewGraph("dead", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	g.Add(0, 2, 0, 0, stf.R(0))
	rep, reject := vetJSON(t, "-graph", writeGraph(t, g))
	if !rep.Has(analyze.CodeDeadWrite) || !reject {
		t.Fatalf("want %s + reject, got reject=%v findings=%+v", analyze.CodeDeadWrite, reject, rep.Findings)
	}
}

func TestVetDetectsNondeterministicProgram(t *testing.T) {
	rep, reject := vetJSON(t, "-workload", "nondet")
	if !rep.Has(analyze.CodeNondeterminism) || !reject {
		t.Fatalf("want %s + reject, got reject=%v findings=%+v", analyze.CodeNondeterminism, reject, rep.Findings)
	}
}

func TestVetDetectsOutOfRangeMapping(t *testing.T) {
	rep, reject := vetJSON(t, "-workload", "chain", "-size", "4", "-workers", "2", "-mapping", "single:9")
	if !rep.Has(analyze.CodeBadMapping) || !reject {
		t.Fatalf("want %s + reject, got reject=%v findings=%+v", analyze.CodeBadMapping, reject, rep.Findings)
	}
}

func TestVetDetectsSerializedWavefrontMapping(t *testing.T) {
	rep, reject := vetJSON(t, "-workload", "wavefront", "-size", "4", "-workers", "4", "-mapping", "single:0")
	if !rep.Has(analyze.CodeSerialization) || !reject {
		t.Fatalf("want %s + reject, got reject=%v findings=%+v", analyze.CodeSerialization, reject, rep.Findings)
	}
}

func TestVetAcceptsCleanWorkloads(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "lu", "-size", "3", "-workers", "2"},
		{"-workload", "gemm", "-size", "2", "-workers", "4"},
		{"-workload", "wavefront", "-size", "4", "-workers", "4"},
		{"-workload", "cholesky", "-size", "3", "-workers", "3", "-mapping", "blockcyclic:2"},
	} {
		rep, reject := vetJSON(t, args...)
		if reject {
			t.Errorf("rio-vet %v rejected a clean workload: %+v", args, rep.Findings)
		}
	}
}

func TestVetVerifyCertifiesCleanWorkloads(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "lu", "-size", "3", "-workers", "2", "-verify"},
		{"-workload", "gemm", "-size", "2", "-workers", "4", "-verify"},
		{"-workload", "cholesky", "-size", "3", "-workers", "3", "-verify", "-mapping", "blockcyclic:2"},
	} {
		rep, reject := vetJSON(t, args...)
		if reject {
			t.Errorf("rio-vet %v rejected a certifiable workload: %+v", args, rep.Findings)
		}
		for _, f := range rep.Findings {
			if strings.HasPrefix(string(f.Code), "RIO-V") {
				t.Errorf("rio-vet %v: unexpected certification finding %s", args, f)
			}
		}
	}
	// A flow with pre-existing (non-certification) findings still gets a
	// clean certificate: -verify adds no RIO-V findings of its own.
	rep, _ := vetJSON(t, "-workload", "random", "-size", "12", "-workers", "3", "-verify")
	for _, f := range rep.Findings {
		if strings.HasPrefix(string(f.Code), "RIO-V") {
			t.Errorf("random workload: unexpected certification finding %s", f)
		}
	}
}

func TestVetVerifyRequiresGraph(t *testing.T) {
	if _, err := run([]string{"-workload", "nondet", "-verify"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-verify on a graphless workload: want usage error")
	}
}

func TestVetHumanReportAndFailOn(t *testing.T) {
	var buf bytes.Buffer
	reject, err := run([]string{"-workload", "lu", "-size", "3", "-workers", "2"}, &buf)
	if err != nil || reject {
		t.Fatalf("clean run: reject=%v err=%v", reject, err)
	}
	if !strings.Contains(buf.String(), "error(s)") {
		t.Fatalf("missing summary line: %q", buf.String())
	}

	// -fail-on info turns the informational findings into a rejection.
	buf.Reset()
	reject, err = run([]string{"-workload", "lu", "-size", "3", "-workers", "2", "-fail-on", "info"}, &buf)
	if err != nil || !reject {
		t.Fatalf("-fail-on info: reject=%v err=%v", reject, err)
	}
}

func TestVetUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-mapping", "nope"},
		{"-passes", "nope"},
		{"-fail-on", "nope"},
		{"-graph", "/does/not/exist.json"},
	} {
		if _, err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("rio-vet %v: want usage error", args)
		}
	}
}

// TestVetExitCodeContract pins the exit-status contract (audited and
// verified correct, no fix needed): run's two results map to exit codes
// in main — err != nil → 2 (usage/internal error), reject → 1 (findings
// at or above -fail-on), neither → 0. A finding must never surface
// through err: scripts rely on exit 2 meaning "the tool could not run",
// not "the tool found something".
func TestVetExitCodeContract(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		reject bool // want exit 1
		err    bool // want exit 2
	}{
		{"clean flow", []string{"-workload", "lu", "-size", "3", "-workers", "2"}, false, false},
		{"nondeterminism is a finding", []string{"-workload", "nondet"}, true, false},
		{"serialized mapping is a finding", []string{"-workload", "wavefront", "-size", "4", "-workers", "4", "-mapping", "single:0"}, true, false},
		{"info findings below -fail-on pass", []string{"-workload", "lu", "-size", "3", "-workers", "2", "-fail-on", "error"}, false, false},
		{"bad flag", []string{"-no-such-flag"}, false, true},
		{"bad mapping spec", []string{"-mapping", "nope"}, false, true},
		{"missing graph file", []string{"-graph", "/does/not/exist.json"}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reject, err := run(tc.args, &bytes.Buffer{})
			if reject != tc.reject {
				t.Errorf("reject = %v, want %v", reject, tc.reject)
			}
			if (err != nil) != tc.err {
				t.Errorf("err = %v, want err=%v", err, tc.err)
			}
			if reject && err != nil {
				t.Error("finding reported through both channels")
			}
		})
	}
}
