// Command rio-trace runs one workload under one engine with per-task span
// recording and prints an ASCII Gantt timeline, the per-kernel duration
// breakdown, and the task graph's critical-path bound next to the achieved
// time — the analysis view behind the paper's efficiency-decomposition
// numbers. (Recording costs ~40% per task at very fine granularity — see
// `rio-bench ablation` — which is why the headline experiments use
// aggregate accounting instead, as the paper does.)
//
//	rio-trace -workload lu -size 6 -workers 4 -engine rio -task-size 5000
//	rio-trace -workload wavefront -size 8 -engine centralized
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rio/internal/bench"
	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rio-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rio-trace", flag.ContinueOnError)
	workload := fs.String("workload", "lu", "independent | random | gemm | lu | cholesky | wavefront | tree | forkjoin")
	size := fs.Int("size", 6, "workload size")
	workers := fs.Int("workers", 4, "worker count")
	engine := fs.String("engine", "rio", "rio | centralized | ws | prio | sequential")
	taskSize := fs.Uint64("task-size", 5000, "synthetic task size (counter iterations)")
	width := fs.Int("width", 100, "gantt width in columns")
	chrome := fs.String("chrome", "", "write a Chrome trace (counter rows + dependency flow arrows) to this file; \"-\" for stdout")
	steal := fs.Bool("steal", false, "enable work stealing (rio engine only); stolen tasks are drawn in the thief's lane with a hand-off arrow")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildGraph(*workload, *size)
	if err != nil {
		return err
	}
	mapping := sched.OwnerComputes(g, sched.NewGrid2D(*workers))
	kind, err := engineKind(*engine)
	if err != nil {
		return err
	}
	var e bench.Engine
	if *steal {
		if kind != bench.RIO {
			return fmt.Errorf("-steal applies to the rio engine only (got %q)", *engine)
		}
		e, err = core.New(core.Options{
			Workers: *workers,
			Mapping: mapping,
			Steal:   &stf.StealPolicy{Victims: sched.RankVictims(g, mapping, *workers)},
		})
	} else {
		e, err = bench.NewEngine(kind, *workers, mapping)
	}
	if err != nil {
		return err
	}

	rec := trace.NewRecorder(*workers)
	cells := kernels.NewCells(*workers)
	base := graphs.CounterKernel(cells, *taskSize)
	kern := rec.Instrument(base)
	if *steal {
		// Owner-aware spans: stolen tasks get the stolen_from annotation
		// and a hand-off arrow in the Chrome export.
		kern = rec.InstrumentOwned(base, mapping)
	}
	t0 := time.Now()
	if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
		return err
	}
	wall := time.Since(t0)

	fmt.Fprintf(out, "%s on %s: %d tasks, %d workers, wall %v\n\n",
		e.Name(), g.Name, rec.Count(), *workers, wall.Round(time.Microsecond))
	if err := rec.Gantt(out, *width); err != nil {
		return err
	}

	fmt.Fprintln(out, "\nper-kernel breakdown:")
	stats := rec.KernelStats()
	kinds := make([]int, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		s := stats[k]
		fmt.Fprintf(out, "  kernel %-3d ×%-6d mean %-10v max %-10v total %v\n",
			k, s.Count, s.Mean().Round(time.Nanosecond), s.Max.Round(time.Nanosecond), s.Total.Round(time.Microsecond))
	}

	critical, work := rec.CriticalPath(g)
	fmt.Fprintf(out, "\nwork %v, critical path %v", work.Round(time.Microsecond), critical.Round(time.Microsecond))
	if critical > 0 {
		fmt.Fprintf(out, " → graph parallelism %.2f; makespan vs bound: %.2fx\n",
			float64(work)/float64(critical), float64(wall)/float64(critical))
	} else {
		fmt.Fprintln(out)
	}

	if *chrome != "" {
		if err := writeChrome(*chrome, rec, g, out); err != nil {
			return err
		}
	}
	return nil
}

// writeChrome exports the recorded run as a graph-aware Chrome trace
// (task slices, ready/executed counter rows, dependency flow arrows) to
// path, or to out when path is "-".
func writeChrome(path string, rec *trace.Recorder, g *stf.Graph, out io.Writer) error {
	if path == "-" {
		return rec.WriteChromeTraceGraph(out, g, nil)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTraceGraph(f, g, nil); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nchrome trace written to %s (load in chrome://tracing or Perfetto)\n", path)
	return nil
}

func buildGraph(workload string, size int) (*stf.Graph, error) {
	switch workload {
	case "independent":
		return graphs.Independent(size), nil
	case "random":
		return graphs.RandomDeps(size, 128, 2, 1, 42), nil
	case "gemm":
		return graphs.GEMM(size), nil
	case "lu":
		return graphs.LU(size), nil
	case "cholesky":
		return graphs.Cholesky(size), nil
	case "wavefront":
		return graphs.Wavefront(size, size), nil
	case "tree":
		return graphs.TreeReduce(size), nil
	case "forkjoin":
		return graphs.ForkJoin(size, size), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func engineKind(s string) (bench.EngineKind, error) {
	switch s {
	case "rio":
		return bench.RIO, nil
	case "centralized":
		return bench.CentralizedFIFO, nil
	case "ws":
		return bench.CentralizedWS, nil
	case "prio":
		return bench.CentralizedPrio, nil
	case "sequential":
		return bench.Sequential, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}
