package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTraceEngines(t *testing.T) {
	for _, eng := range []string{"rio", "centralized", "ws", "prio", "sequential"} {
		var buf bytes.Buffer
		args := []string{"-workload", "lu", "-size", "3", "-workers", "2",
			"-engine", eng, "-task-size", "200", "-width", "40"}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		out := buf.String()
		for _, want := range []string{"tasks", "per-kernel breakdown", "critical path", "w0"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: output missing %q", eng, want)
			}
		}
	}
}

func TestRunTraceWorkloads(t *testing.T) {
	for _, wl := range []string{"independent", "random", "gemm", "lu", "cholesky", "wavefront", "tree", "forkjoin"} {
		var buf bytes.Buffer
		args := []string{"-workload", wl, "-size", "4", "-workers", "2", "-task-size", "100", "-width", "30"}
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
}

func TestRunTraceRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-engine", "nope"}, &buf); err == nil {
		t.Error("unknown engine accepted")
	}
}
