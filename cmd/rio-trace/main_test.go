package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTraceEngines(t *testing.T) {
	for _, eng := range []string{"rio", "centralized", "ws", "prio", "sequential"} {
		var buf bytes.Buffer
		args := []string{"-workload", "lu", "-size", "3", "-workers", "2",
			"-engine", eng, "-task-size", "200", "-width", "40"}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		out := buf.String()
		for _, want := range []string{"tasks", "per-kernel breakdown", "critical path", "w0"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: output missing %q", eng, want)
			}
		}
	}
}

func TestRunTraceWorkloads(t *testing.T) {
	for _, wl := range []string{"independent", "random", "gemm", "lu", "cholesky", "wavefront", "tree", "forkjoin"} {
		var buf bytes.Buffer
		args := []string{"-workload", wl, "-size", "4", "-workers", "2", "-task-size", "100", "-width", "30"}
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
}

// -steal runs the rio engine with a ranked-victim steal policy and
// switches to owner-aware span recording; it is rejected for every other
// engine.
func TestRunTraceSteal(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-workload", "lu", "-size", "3", "-workers", "2",
		"-task-size", "200", "-width", "30", "-steal"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tasks") {
		t.Errorf("steal run output truncated:\n%s", buf.String())
	}
	if err := run([]string{"-engine", "ws", "-steal"}, &buf); err == nil {
		t.Error("-steal accepted for a non-rio engine")
	}
}

func TestRunTraceRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-engine", "nope"}, &buf); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunTraceChromeExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	args := []string{"-workload", "wavefront", "-size", "4", "-workers", "2",
		"-task-size", "100", "-width", "20", "-chrome", path}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome export is not a JSON event array: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	// The wavefront has 16 tasks and 24 dependency edges: slices, counter
	// samples and flow arrows must all be present.
	if phases["X"] != 16 {
		t.Errorf("task slices = %d, want 16", phases["X"])
	}
	if phases["C"] == 0 {
		t.Error("no counter events in chrome export")
	}
	if phases["s"] == 0 || phases["s"] != phases["f"] {
		t.Errorf("flow events unpaired: %d starts, %d finishes", phases["s"], phases["f"])
	}
	if phases["M"] == 0 {
		t.Error("no thread-name metadata in chrome export")
	}
}
