// Command rio-lint runs the runtime's custom source analyzers
// (internal/lint) over a source tree — the vet-style companion of
// rio-vet, which analyzes task flows rather than Go source.
//
//	rio-lint                     lint the current directory tree
//	rio-lint path...             lint the given trees
//	rio-lint -list               show the analyzers
//	rio-lint -passes padguard .  run a subset of the analyzers
//
// The analyzers check implementation invariants of the engines that go
// vet cannot express: poll loops must check the run-abort/cancellation
// state, and sync/atomic struct fields (the shared half of the per-data
// protocol state) must only be touched through atomic method calls. The
// exit status is 1 when any diagnostic is reported. CI runs this over
// the repository.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rio/internal/lint"
)

func main() {
	n, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rio-lint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("rio-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	passSpec := fs.String("passes", "all", "comma-separated analyzers to run (see -list), or all")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	analyzers, err := parsePasses(*passSpec)
	if err != nil {
		return 0, err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var diags []lint.Diagnostic
	for _, root := range roots {
		ds, err := lint.Dir(root, analyzers)
		if err != nil {
			return 0, err
		}
		diags = append(diags, ds...)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return 0, err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "%d diagnostic(s)\n", len(diags))
	}
	return len(diags), nil
}

// parsePasses resolves the -passes flag against the analyzer registry
// (mirrors rio-vet's flag of the same name).
func parsePasses(s string) ([]*lint.Analyzer, error) {
	all := lint.All()
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*lint.Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "all":
			return all, nil
		case name == "":
		case byName[name] == nil:
			names := make([]string, 0, len(all))
			for _, a := range all {
				names = append(names, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (want %s or all)", name, strings.Join(names, "|"))
		case !seen[name]:
			seen[name] = true
			selected = append(selected, byName[name])
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
