package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rio/internal/lint"
)

// writeTree materializes a map of path → source under a temp dir and
// returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanSource = `package core

func fine() int { return 1 }
`

// dirtySource trips atomicfield (plain read of an atomic field) and
// padguard (hand-counted pad) in one package.
const dirtySource = `package core

import "sync/atomic"

type sharedState struct {
	ctr atomic.Int64
	_   [56]byte
}

func bad(s *sharedState) int64 {
	return int64(s.ctr.Load()) + readPlain(s)
}

func readPlain(s *sharedState) int64 {
	var v atomic.Int64
	v = s.ctr
	return v.Load()
}
`

// TestLintExitCodeContract pins the exit-status contract, identical to
// rio-vet's: run's (count, err) map to exit codes in main — err != nil →
// 2 (usage error), count > 0 → 1 (diagnostics reported), neither → 0. A
// diagnostic must never surface through err: scripts rely on exit 2
// meaning "the tool could not run", not "the tool found something".
func TestLintExitCodeContract(t *testing.T) {
	clean := writeTree(t, map[string]string{"core/ok.go": cleanSource})
	dirty := writeTree(t, map[string]string{"core/bad.go": dirtySource})
	cases := []struct {
		name  string
		args  []string
		count bool // want exit 1 (diagnostics)
		err   bool // want exit 2 (usage/internal error)
	}{
		{"clean tree", []string{clean}, false, false},
		{"violations are diagnostics", []string{dirty}, true, false},
		{"pass subset still finds its own", []string{"-passes", "padguard", dirty}, true, false},
		{"pass subset skips others' findings", []string{"-passes", "waitcancel", dirty}, false, false},
		{"list is clean", []string{"-list"}, false, false},
		{"bad flag", []string{"-no-such-flag"}, false, true},
		{"unknown pass", []string{"-passes", "nope", clean}, false, true},
		{"empty pass set", []string{"-passes", ",", clean}, false, true},
		{"missing tree", []string{filepath.Join(clean, "absent")}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := run(tc.args, &bytes.Buffer{})
			if (n > 0) != tc.count {
				t.Errorf("diagnostics = %d, want reported=%v", n, tc.count)
			}
			if (err != nil) != tc.err {
				t.Errorf("err = %v, want err=%v", err, tc.err)
			}
			if n > 0 && err != nil {
				t.Error("finding reported through both channels")
			}
		})
	}
}

func TestLintJSONOutput(t *testing.T) {
	dirty := writeTree(t, map[string]string{"core/bad.go": dirtySource})
	var buf bytes.Buffer
	n, err := run([]string{"-json", dirty}, &buf)
	if err != nil || n == 0 {
		t.Fatalf("run: n=%d err=%v", n, err)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if len(diags) != n {
		t.Fatalf("JSON carries %d diagnostics, run reported %d", len(diags), n)
	}
}

func TestLintListNamesEveryAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, a := range lint.All() {
		if !strings.Contains(buf.String(), a.Name) {
			t.Errorf("-list output misses %s:\n%s", a.Name, buf.String())
		}
	}
}
