// Command rio-check regenerates the paper's Table 1: explicit-state model
// checking of the STF specification and of the Run-In-Order execution model
// on tiled LU task flows.
//
//	rio-check              checks the 2x2 and 3x2 instances
//	rio-check -sizes 2x2,3x2,3x3
//	rio-check -workers 2
//
// For each instance it reports generated and distinct state counts,
// checking time, and whether all properties held (data-race freedom,
// deadlock-freedom/termination, and refinement of STF by Run-In-Order).
//
// With -exec N the checker additionally executes each instance N times on
// the real in-order engine against the sequential-consistency oracle; with
// -timeout D those executions are bounded and a diverging or wedged run is
// reported as a structured stall/divergence diagnosis instead of hanging
// the checker.
//
// Exit status: 0 when every property holds, 1 when the checker found
// violations (in the model or in real execution), 2 on usage or internal
// errors — the same contract as rio-vet, so CI scripts can distinguish "the
// tool found a bug" from "the tool could not run".
//
// The -unsound flag checks a deliberately broken Run-In-Order model (the
// get_write read-count wait of Algorithm 2 is dropped) on a flow full of
// write-after-read hazards, as a negative control: a healthy checker must
// exit 1 on it. (LU itself is unsuitable for this control — its tiles are
// never rewritten after being read, so the mutation is invisible there.)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"rio"
	"rio/internal/analyze"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/spec"
	"rio/internal/stf"
)

func main() {
	violations, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "rio-check:", err)
		os.Exit(2)
	}
	if violations {
		os.Exit(1)
	}
}

// run performs the checks and reports its outcome on two axes, mirroring
// rio-vet: err covers usage and internal failures (exit 2), violations
// covers genuine findings (exit 1). A finding is never reported through
// err, so scripts can rely on the distinction.
func run(args []string) (violations bool, err error) {
	fs := flag.NewFlagSet("rio-check", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "2x2,3x2,3x3", "comma-separated LU tile-grid sizes (RxC)")
	workload := fs.String("workload", "lu", "task flow to check: lu | cholesky | gemm | wavefront | chain | random (the paper checks lu only; nothing in the method is LU-specific)")
	size := fs.Int("size", 3, "size of non-LU workloads (tiles / grid side / task count)")
	workers := fs.Int("workers", 2, "worker count of the checked models (max 4)")
	sample := fs.Int("sample", 0, "if > 0, Monte-Carlo sample this many random executions instead of exhaustive enumeration (for instances beyond exhaustive reach)")
	seed := fs.Int64("seed", 1, "sampling seed")
	execRuns := fs.Int("exec", 0, "if > 0, additionally execute each instance this many times on the real in-order engine against the sequential-consistency oracle")
	timeout := fs.Duration("timeout", 0, "bound each -exec run: the run is canceled at the deadline and the stall watchdog (armed at half the timeout) turns a hung run into a stall diagnosis")
	unsound := fs.Bool("unsound", false, "negative control: check a deliberately broken Run-In-Order model (read-count wait dropped) on a WAR-hazard flow; a healthy checker reports violations and exits 1")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *timeout < 0 {
		return false, fmt.Errorf("negative -timeout %v", *timeout)
	}
	if *unsound && *execRuns > 0 {
		return false, fmt.Errorf("-unsound cannot be combined with -exec (the real engine has no unsound mode)")
	}
	var rows []spec.Table1Row
	var sizes [][2]int
	switch {
	case *unsound:
		rows, err = unsoundControl(*workers, *seed)
	case *workload != "lu":
		rows, err = checkWorkload(*workload, *size, *workers, *sample, *seed)
	default:
		sizes, err = analyze.ParseSizes(*sizesFlag)
		if err != nil {
			return false, err
		}
		if *sample > 0 {
			rows, err = sampleTable(sizes, *workers, *sample, *seed)
		} else {
			rows, err = spec.Table1(sizes, *workers)
		}
	}
	if err != nil {
		return false, err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\ttasks\tmodel\tgenerated\tdistinct\tdepth\ttime\tresult")
	ok := true
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\tSTF\t%d\t%d\t%d\t%s\t%s\n",
			r.Size(), r.Tasks, r.STF.Generated, r.STF.Distinct, r.STF.Depth, r.STFTime, verdict(r.STF))
		fmt.Fprintf(tw, "%s\t%d\tRun-In-Order\t%d\t%d\t%d\t%s\t%s\n",
			r.Size(), r.Tasks, r.RIO.Generated, r.RIO.Distinct, r.RIO.Depth, r.RIOTime, verdict(r.RIO))
		ok = ok && r.STF.OK() && r.RIO.OK()
		for _, v := range append(r.STF.Violations, r.RIO.Violations...) {
			fmt.Fprintf(tw, "\t\t! %s\n", v)
		}
	}
	if err := tw.Flush(); err != nil {
		return false, err
	}
	if !ok {
		fmt.Println("property violations found")
		return true, nil
	}
	if *sample > 0 {
		fmt.Printf("no violations in %d sampled executions per model: data-race freedom, progress, per-step STF readiness\n", *sample)
	} else {
		fmt.Println("all properties verified: data-race freedom, termination, RIO refines STF")
	}

	if *execRuns > 0 {
		type instance struct {
			name string
			g    *stf.Graph
		}
		var insts []instance
		if *workload != "lu" {
			g, err := analyze.WorkloadGraph(*workload, *size, *seed)
			if err != nil {
				return false, err
			}
			insts = append(insts, instance{fmt.Sprintf("%s-%d", *workload, *size), g})
		} else {
			for _, sz := range sizes {
				insts = append(insts, instance{fmt.Sprintf("%dx%d", sz[0], sz[1]), graphs.LURect(sz[0], sz[1])})
			}
		}
		for _, in := range insts {
			if err := execCheck(in.g, *workers, *execRuns, *timeout); err != nil {
				// A misbehaving run — consistency mismatch, stall or
				// divergence diagnosis — is a finding about the engine,
				// not a tool failure: report it and exit 1, not 2.
				var f *execFinding
				if errors.As(err, &f) {
					fmt.Printf("%s: real execution: %v\n", in.name, err)
					return true, nil
				}
				return false, fmt.Errorf("%s: real execution: %w", in.name, err)
			}
		}
		fmt.Printf("executed each instance %d time(s) on the in-order engine: sequential consistency verified\n", *execRuns)
	}
	return false, nil
}

// execFinding marks an execCheck error as a genuine finding (the engine
// misbehaved) rather than a tool failure (the check could not run).
type execFinding struct{ err error }

func (f *execFinding) Error() string { return f.err.Error() }
func (f *execFinding) Unwrap() error { return f.err }

// execCheck runs g on the real in-order engine against the
// sequential-consistency oracle. A positive timeout bounds each run and
// arms the stall watchdog at half the budget, so a run that wedges (e.g. a
// divergent program) surfaces as a stall/divergence diagnosis instead of
// hanging the checker.
func execCheck(g *stf.Graph, workers, runs int, timeout time.Duration) error {
	mapping := sched.Cyclic(workers)
	if err := analyze.ValidateInstance(g, workers, mapping); err != nil {
		return err
	}
	opts := rio.Options{Model: rio.InOrder, Workers: workers, Mapping: mapping}
	if timeout > 0 {
		opts.Timeout = timeout
		opts.StallTimeout = timeout / 2
	}
	rt, err := rio.New(opts)
	if err != nil {
		return err
	}
	for i := 0; i < runs; i++ {
		if err := enginetest.Check(rt, g); err != nil {
			var st *rio.StallError
			if errors.As(err, &st) {
				return &execFinding{fmt.Errorf("stall diagnosis: %w", err)}
			}
			var div *rio.DivergenceError
			if errors.As(err, &div) {
				return &execFinding{fmt.Errorf("divergence diagnosis: %w", err)}
			}
			return &execFinding{err}
		}
	}
	return nil
}

// unsoundControl checks the SkipReadBlockers mutation — the Run-In-Order
// model minus the get_write read-count wait of Algorithm 2 — on a small
// random-dependency flow full of write-after-read hazards. It exists as a
// negative control: the checker must report violations here, proving it
// can actually catch broken execution models. (LU is unusable for this:
// its tiles are never rewritten after being read, so dropping the WAR
// ordering is invisible on LU flows.)
func unsoundControl(workers int, seed int64) ([]spec.Table1Row, error) {
	g := graphs.RandomDeps(10, 3, 1, 1, seed)
	m, err := spec.NewModel(g, workers, sched.Cyclic(workers))
	if err != nil {
		return nil, err
	}
	row := spec.Table1Row{Name: "unsound-" + g.Name, Tasks: len(g.Tasks)}
	t0 := time.Now()
	row.STF = m.CheckSTF()
	row.STFTime = time.Since(t0)
	t0 = time.Now()
	row.RIO = m.CheckRIO(spec.RIOOptions{SkipReadBlockers: true})
	row.RIOTime = time.Since(t0)
	return []spec.Table1Row{row}, nil
}

// checkWorkload extends Table 1's procedure to the other workloads of the
// evaluation.
func checkWorkload(workload string, size, workers, sample int, seed int64) ([]spec.Table1Row, error) {
	g, err := analyze.WorkloadGraph(workload, size, seed)
	if err != nil {
		return nil, err
	}
	var row spec.Table1Row
	if sample > 0 {
		m, err := spec.NewModel(g, workers, sched.Cyclic(workers))
		if err != nil {
			return nil, err
		}
		row = spec.Table1Row{Tasks: len(g.Tasks)}
		t0 := time.Now()
		row.STF = m.SampleSTF(sample, seed)
		row.STFTime = time.Since(t0)
		t0 = time.Now()
		row.RIO = m.SampleRIO(sample, seed, spec.RIOOptions{})
		row.RIOTime = time.Since(t0)
	} else {
		var err error
		row, err = spec.CheckPair(g, workers, sched.Cyclic(workers))
		if err != nil {
			return nil, err
		}
	}
	row.Name = fmt.Sprintf("%s-%d", workload, size)
	return []spec.Table1Row{row}, nil
}

// sampleTable mirrors spec.Table1 using Monte-Carlo sampling.
func sampleTable(sizes [][2]int, workers, runs int, seed int64) ([]spec.Table1Row, error) {
	rows := make([]spec.Table1Row, 0, len(sizes))
	for _, sz := range sizes {
		g := graphs.LURect(sz[0], sz[1])
		m, err := spec.NewModel(g, workers, sched.Cyclic(workers))
		if err != nil {
			return nil, err
		}
		row := spec.Table1Row{Rows: sz[0], Cols: sz[1], Tasks: len(g.Tasks)}
		t0 := time.Now()
		row.STF = m.SampleSTF(runs, seed)
		row.STFTime = time.Since(t0)
		t0 = time.Now()
		row.RIO = m.SampleRIO(runs, seed, spec.RIOOptions{})
		row.RIOTime = time.Since(t0)
		rows = append(rows, row)
	}
	return rows, nil
}

func verdict(r *spec.Result) string {
	if r.OK() {
		return "ok"
	}
	return fmt.Sprintf("FAILED (%d violations)", len(r.Violations))
}
