package main

import (
	"testing"

	"rio/internal/analyze"
)

// check runs the CLI and fails the test on usage/internal errors,
// returning whether the checker reported violations.
func check(t *testing.T, args ...string) bool {
	t.Helper()
	violations, err := run(args)
	if err != nil {
		t.Fatal(err)
	}
	return violations
}

func TestRunExhaustive(t *testing.T) {
	if check(t, "-sizes", "2x2,3x2", "-workers", "2") {
		t.Error("violations reported on a sound model")
	}
}

func TestRunSampled(t *testing.T) {
	if check(t, "-sizes", "4x4", "-workers", "3", "-sample", "50") {
		t.Error("violations reported on a sound model")
	}
}

func TestRunRejectsBadSizes(t *testing.T) {
	for _, s := range []string{"2", "2x", "ax2", "2xb"} {
		if _, err := run([]string{"-sizes", s}); err == nil {
			t.Errorf("size %q accepted", s)
		}
	}
}

func TestParseSizes(t *testing.T) {
	// Size parsing lives in internal/analyze now, shared with rio-vet.
	got, err := analyze.ParseSizes("2x2, 3x2")
	if err != nil || len(got) != 2 || got[1] != [2]int{3, 2} {
		t.Errorf("ParseSizes = %v, %v", got, err)
	}
}

func TestRunOtherWorkloads(t *testing.T) {
	// Sizes chosen to keep exhaustive state spaces small (GEMM's 27
	// independent-chain tasks at size 3 already explode combinatorially).
	for wl, size := range map[string]string{
		"cholesky": "3", "gemm": "2", "wavefront": "3", "random": "6",
	} {
		if check(t, "-workload", wl, "-size", size) {
			t.Errorf("%s: violations reported on a sound model", wl)
		}
	}
	if check(t, "-workload", "cholesky", "-size", "4", "-sample", "30") {
		t.Error("sampled cholesky: violations reported on a sound model")
	}
	if _, err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunRejectsTooManyWorkers(t *testing.T) {
	if _, err := run([]string{"-sizes", "2x2", "-workers", "9"}); err == nil {
		t.Error("worker count beyond MaxWorkers accepted")
	}
}

func TestRunRealExecution(t *testing.T) {
	// -exec runs the instance on the real in-order engine under a deadline;
	// the healthy runs here must complete well inside it.
	if check(t, "-sizes", "2x2", "-workers", "2", "-exec", "2", "-timeout", "30s") {
		t.Error("violations reported on a healthy execution")
	}
	if check(t, "-workload", "gemm", "-size", "2", "-exec", "1", "-timeout", "30s") {
		t.Error("violations reported on a healthy execution")
	}
	// -exec without -timeout is legal (unbounded, watchdog off).
	if check(t, "-workload", "wavefront", "-size", "3", "-exec", "1") {
		t.Error("violations reported on a healthy execution")
	}
}

func TestRunRejectsNegativeTimeout(t *testing.T) {
	if _, err := run([]string{"-sizes", "2x2", "-timeout", "-1s"}); err == nil {
		t.Error("negative -timeout accepted")
	}
}

// TestExitCodeContract pins the CLI exit-status contract: run's two
// results map to exit codes in main — err != nil → 2 (usage/internal
// error), violations → 1 (genuine finding), neither → 0. Findings must
// never surface through err, or scripts would see exit 2 for an ordinary
// "the checker found a bug" outcome.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		violations bool // want exit 1
		err        bool // want exit 2
	}{
		{"clean model", []string{"-sizes", "2x2", "-workers", "2"}, false, false},
		{"unsound model is a finding", []string{"-workers", "2", "-unsound"}, true, false},
		{"bad flag", []string{"-no-such-flag"}, false, true},
		{"bad size", []string{"-sizes", "zz"}, false, true},
		{"negative timeout", []string{"-sizes", "2x2", "-timeout", "-1s"}, false, true},
		{"unknown workload", []string{"-workload", "nope"}, false, true},
		{"unsound with exec", []string{"-unsound", "-exec", "1"}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			violations, err := run(tc.args)
			if violations != tc.violations {
				t.Errorf("violations = %v, want %v", violations, tc.violations)
			}
			if (err != nil) != tc.err {
				t.Errorf("err = %v, want err=%v", err, tc.err)
			}
			if violations && err != nil {
				t.Error("finding reported through both channels")
			}
		})
	}
}
