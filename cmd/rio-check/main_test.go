package main

import (
	"testing"

	"rio/internal/analyze"
)

func TestRunExhaustive(t *testing.T) {
	if err := run([]string{"-sizes", "2x2,3x2", "-workers", "2"}); err != nil {
		t.Error(err)
	}
}

func TestRunSampled(t *testing.T) {
	if err := run([]string{"-sizes", "4x4", "-workers", "3", "-sample", "50"}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadSizes(t *testing.T) {
	for _, s := range []string{"2", "2x", "ax2", "2xb"} {
		if err := run([]string{"-sizes", s}); err == nil {
			t.Errorf("size %q accepted", s)
		}
	}
}

func TestParseSizes(t *testing.T) {
	// Size parsing lives in internal/analyze now, shared with rio-vet.
	got, err := analyze.ParseSizes("2x2, 3x2")
	if err != nil || len(got) != 2 || got[1] != [2]int{3, 2} {
		t.Errorf("ParseSizes = %v, %v", got, err)
	}
}

func TestRunOtherWorkloads(t *testing.T) {
	// Sizes chosen to keep exhaustive state spaces small (GEMM's 27
	// independent-chain tasks at size 3 already explode combinatorially).
	for wl, size := range map[string]string{
		"cholesky": "3", "gemm": "2", "wavefront": "3", "random": "6",
	} {
		if err := run([]string{"-workload", wl, "-size", size}); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
	if err := run([]string{"-workload", "cholesky", "-size", "4", "-sample", "30"}); err != nil {
		t.Errorf("sampled cholesky: %v", err)
	}
	if err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunRejectsTooManyWorkers(t *testing.T) {
	if err := run([]string{"-sizes", "2x2", "-workers", "9"}); err == nil {
		t.Error("worker count beyond MaxWorkers accepted")
	}
}

func TestRunRealExecution(t *testing.T) {
	// -exec runs the instance on the real in-order engine under a deadline;
	// the healthy runs here must complete well inside it.
	if err := run([]string{"-sizes", "2x2", "-workers", "2", "-exec", "2", "-timeout", "30s"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-workload", "gemm", "-size", "2", "-exec", "1", "-timeout", "30s"}); err != nil {
		t.Error(err)
	}
	// -exec without -timeout is legal (unbounded, watchdog off).
	if err := run([]string{"-workload", "wavefront", "-size", "3", "-exec", "1"}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsNegativeTimeout(t *testing.T) {
	if err := run([]string{"-sizes", "2x2", "-timeout", "-1s"}); err == nil {
		t.Error("negative -timeout accepted")
	}
}
