package main

import "testing"

func TestRunExhaustive(t *testing.T) {
	if err := run([]string{"-sizes", "2x2,3x2", "-workers", "2"}); err != nil {
		t.Error(err)
	}
}

func TestRunSampled(t *testing.T) {
	if err := run([]string{"-sizes", "4x4", "-workers", "3", "-sample", "50"}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadSizes(t *testing.T) {
	for _, s := range []string{"2", "2x", "ax2", "2xb"} {
		if err := run([]string{"-sizes", s}); err == nil {
			t.Errorf("size %q accepted", s)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("2x2, 3x2")
	if err != nil || len(got) != 2 || got[1] != [2]int{3, 2} {
		t.Errorf("parseSizes = %v, %v", got, err)
	}
}

func TestRunOtherWorkloads(t *testing.T) {
	// Sizes chosen to keep exhaustive state spaces small (GEMM's 27
	// independent-chain tasks at size 3 already explode combinatorially).
	for wl, size := range map[string]string{
		"cholesky": "3", "gemm": "2", "wavefront": "3", "random": "6",
	} {
		if err := run([]string{"-workload", wl, "-size", size}); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
	if err := run([]string{"-workload", "cholesky", "-size", "4", "-sample", "30"}); err != nil {
		t.Errorf("sampled cholesky: %v", err)
	}
	if err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunRejectsTooManyWorkers(t *testing.T) {
	if err := run([]string{"-sizes", "2x2", "-workers", "9"}); err == nil {
		t.Error("worker count beyond MaxWorkers accepted")
	}
}
