// Command rio-benchdiff compares two `go test -bench` outputs and fails on
// per-task performance regressions — the CI perf-regression smoke gate.
//
//	go test -run='^$' -bench='CompiledReplay|SyncContention' -benchtime=... . > new.txt
//	rio-benchdiff -baseline .github/bench-baseline.txt -tolerance 0.15 new.txt
//
// It is a dependency-free stand-in for benchstat, tuned to this
// repository's benchmarks: for every benchmark name present in both files
// it compares the ns/task custom metric (falling back to ns/op when a
// benchmark does not report one) and exits non-zero when the current value
// exceeds the baseline by more than the tolerance. Benchmarks present in
// only one file are listed but never fail the gate, so adding or renaming
// benchmarks does not require a lockstep baseline update.
//
// Repeated measurements of one benchmark (-count > 1) are reduced to their
// minimum before comparison: for CPU-bound microbenchmarks scheduler and
// neighbor noise only ever adds time, so the minimum estimates the true
// cost with far less cross-run drift than the median on shared runners —
// the property a 15% gate needs to not flake. The trailing -N GOMAXPROCS
// suffix is stripped from names so baselines survive runner shape changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rio-benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rio-benchdiff", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "baseline `file` of go-bench output (required)")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional ns/task increase before failing")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rio-benchdiff -baseline old.txt [-tolerance 0.15] [new.txt]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" {
		fs.Usage()
		return fmt.Errorf("-baseline is required")
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return fmt.Errorf("at most one input file")
	}

	base, err := parseFile(*baselinePath)
	if err != nil {
		return err
	}
	cur := stdin
	curName := "<stdin>"
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		cur, curName = f, fs.Arg(0)
	}
	current, err := parseBench(cur)
	if err != nil {
		return fmt.Errorf("%s: %w", curName, err)
	}
	if len(current) == 0 {
		return fmt.Errorf("%s: no benchmark results", curName)
	}

	report := diff(base, current, *tolerance)
	for _, l := range report.lines {
		fmt.Fprintln(stdout, l)
	}
	if len(report.regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(report.regressions), *tolerance*100, strings.Join(report.regressions, ", "))
	}
	return nil
}

// result is one benchmark's reduced measurement in nanoseconds per task
// (or per op when no ns/task metric is reported).
type result struct {
	value float64
	unit  string
}

var nameSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads go-test benchmark output: lines of the form
//
//	BenchmarkName/sub-4  10  123456 ns/op  45.60 ns/task
//
// Every other line (headers, PASS, metrics we do not track) is ignored.
// Multiple lines for one name reduce to the minimum value (see the package
// comment for why minimum, not median).
func parseBench(r io.Reader) (map[string]result, error) {
	raw := map[string][]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := nameSuffix.ReplaceAllString(f[0], "")
		// Scan the value/unit pairs after the iteration count; prefer
		// ns/task, fall back to ns/op.
		var nsOp, nsTask float64
		var haveOp, haveTask bool
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/task":
				nsTask, haveTask = v, true
			case "ns/op":
				nsOp, haveOp = v, true
			}
		}
		switch {
		case haveTask:
			raw[name] = append(raw[name], result{nsTask, "ns/task"})
		case haveOp:
			raw[name] = append(raw[name], result{nsOp, "ns/op"})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result, len(raw))
	for name, rs := range raw {
		best := rs[0]
		for _, r := range rs[1:] {
			if r.value < best.value {
				best = r
			}
		}
		out[name] = best
	}
	return out, nil
}

func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return m, nil
}

type diffReport struct {
	lines       []string
	regressions []string
}

// diff compares current against base; a benchmark regresses when its value
// exceeds base·(1+tolerance).
func diff(base, current map[string]result, tolerance float64) diffReport {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	var rep diffReport
	for _, name := range names {
		cur := current[name]
		old, ok := base[name]
		if !ok || old.unit != cur.unit || old.value <= 0 {
			rep.lines = append(rep.lines, fmt.Sprintf("%-60s %12.2f %s (no comparable baseline)", name, cur.value, cur.unit))
			continue
		}
		delta := cur.value/old.value - 1
		status := "ok"
		if delta > tolerance {
			status = "REGRESSION"
			rep.regressions = append(rep.regressions, name)
		}
		rep.lines = append(rep.lines, fmt.Sprintf("%-60s %12.2f -> %12.2f %s  %+6.1f%%  %s",
			name, old.value, cur.value, cur.unit, delta*100, status))
	}
	for name := range base {
		if _, ok := current[name]; !ok {
			rep.lines = append(rep.lines, fmt.Sprintf("%-60s (in baseline only)", name))
		}
	}
	sort.Strings(rep.lines[len(names):])
	return rep
}
