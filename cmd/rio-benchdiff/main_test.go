package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
BenchmarkCompiledReplay/closure-4      	      50	   2000000 ns/op	       100.0 ns/task
BenchmarkCompiledReplay/compiled-4     	     100	   1000000 ns/op	        50.00 ns/task
BenchmarkSyncContention/park-4         	      20	   5000000 ns/op	       200.0 ns/task
BenchmarkNoMetric-4                    	    1000	      1234 ns/op
PASS
`

func TestParseBenchPrefersNsTask(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkCompiledReplay/compiled"]; got.value != 50 || got.unit != "ns/task" {
		t.Errorf("compiled = %+v", got)
	}
	if got := m["BenchmarkNoMetric"]; got.value != 1234 || got.unit != "ns/op" {
		t.Errorf("ns/op fallback = %+v", got)
	}
}

func TestParseBenchMinOverRepeats(t *testing.T) {
	in := `BenchmarkX-4 10 1 ns/op 30.0 ns/task
BenchmarkX-4 10 1 ns/op 10.0 ns/task
BenchmarkX-8 10 1 ns/op 20.0 ns/task
`
	m, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// The -N suffix is stripped, so all three lines are one benchmark;
	// repeats reduce to the minimum of {10, 20, 30}.
	if got := m["BenchmarkX"]; got.value != 10 {
		t.Errorf("min = %v, want 10", got.value)
	}
}

func TestDiffFlagsRegressionBeyondTolerance(t *testing.T) {
	base := map[string]result{
		"A": {100, "ns/task"},
		"B": {100, "ns/task"},
		"C": {100, "ns/task"},
	}
	current := map[string]result{
		"A": {110, "ns/task"}, // +10%: within tolerance
		"B": {130, "ns/task"}, // +30%: regression
		"D": {50, "ns/task"},  // new benchmark: reported, never fails
	}
	rep := diff(base, current, 0.15)
	if len(rep.regressions) != 1 || rep.regressions[0] != "B" {
		t.Fatalf("regressions = %v, want [B]", rep.regressions)
	}
	joined := strings.Join(rep.lines, "\n")
	for _, want := range []string{"REGRESSION", "no comparable baseline", "in baseline only"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sampleOld), 0o644); err != nil {
		t.Fatal(err)
	}

	// Identical input: the gate passes.
	var out bytes.Buffer
	if err := run([]string{"-baseline", basePath}, strings.NewReader(sampleOld), &out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}

	// A >15% ns/task regression on one benchmark: the gate fails and names it.
	regressed := strings.Replace(sampleOld, "50.00 ns/task", "80.00 ns/task", 1)
	out.Reset()
	err := run([]string{"-baseline", basePath}, strings.NewReader(regressed), &out)
	if err == nil {
		t.Fatalf("regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkCompiledReplay/compiled") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}

	// Missing baseline flag is a usage error.
	if err := run(nil, strings.NewReader(sampleOld), &out); err == nil {
		t.Error("missing -baseline accepted")
	}
}
