// Command rio-serve is the multi-tenant graph-execution service: a
// long-running HTTP front end over the caching rio.Engine. Clients POST
// task flows in the JSON wire format rio-graph writes and rio-vet vets;
// the server preflights them, compiles each distinct (graph, mapping)
// once — certifying the compiled streams when -verify is set — and
// serves repeated executions from the compiled-program cache.
//
//	rio-serve -addr :8080 -workers 8 -verify
//	rio-graph -workload lu -size 6 -json | curl -sd @- localhost:8080/v1/flows
//	curl -sd '{"kernel":"spin"}' localhost:8080/v1/flows/<id>/run
//	curl -s localhost:8080/v1/progress
//	curl -s localhost:8080/metrics
//
// Tenancy is per X-Rio-Tenant header (default "default"): each tenant
// gets its own bounded worker pool, bounded submission queue (full →
// 429 with Retry-After) and compiled-program cache. SIGTERM/SIGINT
// drain gracefully: new work is rejected with 503 while queued and
// in-flight executions finish, bounded by -drain-timeout.
//
// The debug surfaces — /debug/pprof and /debug/vars — are served on
// -debug-addr (empty disables them), kept off the client-facing
// listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "expvar"
	_ "net/http/pprof"

	"rio/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "rio-serve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled (the signal path in production),
// then drains. ready, when non-nil, receives the bound listen address
// once the service accepts connections — the test hook that makes
// "-addr 127.0.0.1:0" usable.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("rio-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address of the service API")
	debugAddr := fs.String("debug-addr", "", "listen address of the debug surfaces (pprof, expvar); empty disables them")
	workers := fs.Int("workers", 4, "worker-pool size of each tenant engine")
	queue := fs.Int("queue", 64, "per-tenant submission-queue depth (full queues answer 429)")
	tenants := fs.Int("tenants", 16, "maximum number of tenants")
	flows := fs.Int("flows", 128, "maximum registered flows per tenant")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request execution timeout (rio.Options.Timeout)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
	verify := fs.Bool("verify", false, "certify compiled streams on every cache miss (translation validation)")
	prune := fs.Bool("prune", true, "apply §3.5 task pruning when compiling")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown drain waits for in-flight work before canceling it")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxTenants:    *tenants,
		MaxFlows:      *flows,
		Timeout:       *timeout,
		RetryAfter:    *retryAfter,
		Verify:        *verify,
		Prune:         *prune,
		PublishExpvar: *debugAddr != "",
	})

	if *debugAddr != "" {
		// The pprof and expvar imports register on http.DefaultServeMux;
		// serve that mux on the debug listener only.
		go func() {
			log.Printf("rio-serve: debug surfaces on %s (/debug/pprof, /debug/vars)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("rio-serve: debug listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("rio-serve: serving on %s (%d workers/tenant, queue %d, timeout %v, verify %v)",
		ln.Addr(), *workers, *queue, *timeout, *verify)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("rio-serve: shutdown requested; draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rio-serve: http shutdown: %v", err)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}
