package main

// End-to-end smoke of the service binary's wiring: serve on an
// ephemeral port, drive one submit/run/metrics round trip with the
// exact bodies the README quickstart shows, then shut down via context
// cancellation (the SIGTERM path minus the signal).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rio/internal/graphs"
)

func TestServeRoundTripAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-verify"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	var buf bytes.Buffer
	if err := graphs.LU(4).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/flows", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, info.ID)
	}

	resp, err = http.Post(base+"/v1/flows/"+info.ID+"/run", "application/json", strings.NewReader(`{"kernel":"spin"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, raw)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(exposition), "rio_tasks_executed_total") {
		t.Errorf("metrics exposition missing task counters:\n%s", exposition)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}
