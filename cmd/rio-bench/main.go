// Command rio-bench regenerates the figures of the paper's evaluation:
//
//	rio-bench fig2       GEMM execution time vs tile size (centralized & RIO)
//	rio-bench fig3       sequential GEMM kernel efficiency vs tile size
//	rio-bench fig4       GEMM efficiency decomposition vs tile size
//	rio-bench fig6       independent counter tasks: centralized vs RIO
//	rio-bench fig7       weak scaling of task-flow unrolling (RIO, pruned, centralized)
//	rio-bench fig8       efficiency decomposition on the 4 experiments of §5.1
//	rio-bench sim        Figure 8 at the paper's 24-thread scale on an ideal
//	                     machine, with cost constants fitted from the real
//	                     engines (discrete-event simulation)
//	rio-bench hpl        pivoted-LU (HPL core): the paper's motivating app
//	rio-bench costmodel  fit & validate cost models, eq. (1)/(2)
//	rio-bench ablation   design-choice ablations (scheduler, window, spin,
//	                     mapping quality, sparse trees, trace overhead)
//	rio-bench replay     replay-path ablation on the fig7 workload: closure
//	                     replay vs compiled per-worker instruction streams
//	                     (plus guard-off and compile-time-pruned variants)
//	rio-bench sync       synchronization ablation: wait policies (adaptive,
//	                     spin, park, sleep) on contended readers-writer and
//	                     reduction rounds plus the uncontended fig7 replay,
//	                     reporting wall, ns/task and process CPU time
//	rio-bench steal      work-stealing ablation: balanced vs skewed mapping ×
//	                     steal off/on on both replay paths, with sleeping
//	                     (I/O-like) task bodies — the hybrid model's headline
//	                     matrix, reporting wall, ns/task and process CPU time
//	rio-bench pipeline   streaming ablation: an unbounded flow of small-task
//	                     windows through the Stream API — native in-order
//	                     session (compiled shapes and closure replay) vs the
//	                     centralized per-window fallback
//	rio-bench all        fig2..fig8 + costmodel (run sim/sim7/hpl/ablation
//	                     separately; they have their own time budgets)
//
// Flags scale the workloads; defaults are laptop-sized versions of the
// paper's parameters. Use -csv or -json to emit machine-readable output
// (-json writes the BENCH_*.json perf-trajectory schema CI archives).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rio/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rio-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rio-bench", flag.ContinueOnError)
	var (
		workers    = fs.Int("workers", 4, "thread count p for parallel engines")
		tasks      = fs.Int("tasks", 4096, "task count for fixed-size experiments")
		sizes      = fs.String("task-sizes", "100,1000,10000,100000,1000000", "comma-separated counter task sizes (loop iterations)")
		reps       = fs.Int("reps", 3, "repetitions (median reported)")
		warmup     = fs.Int("warmup", 1, "warmup runs before measuring")
		seed       = fs.Int64("seed", 42, "seed for the random-dependency workload")
		n          = fs.Int("n", 256, "matrix dimension for the GEMM figures")
		tiles      = fs.String("tile-sizes", "8,16,32,64,128,256", "comma-separated GEMM tile sizes (must divide n)")
		maxW       = fs.Int("max-workers", 6, "maximum worker count for fig7")
		perW       = fs.Int("tasks-per-worker", 8192, "fig7 tasks per worker (paper: 32768)")
		f7size     = fs.Uint64("fig7-task-size", 1024, "fig7 fixed task size")
		csvOut     = fs.Bool("csv", false, "emit CSV instead of a text table")
		jsonOut    = fs.Bool("json", false, "emit the BENCH_*.json perf-trajectory array instead of a text table")
		rounds     = fs.Int("sync-rounds", 200, "sync only: writer/readers rounds of the contended workloads")
		readers    = fs.Int("sync-readers", 0, "sync only: readers per round (0 = workers)")
		syncSize   = fs.Uint64("sync-task-size", 2000, "sync only: counter task size; nonzero makes waits long enough that the sleep ladder's oversleep shows")
		syncBlock  = fs.Duration("sync-block", 200*time.Microsecond, "sync only: sleeping task body of the blocking workload (0 disables it)")
		syncSpin   = fs.Int("sync-spin", 0, "sync only: SpinLimit override (0 = engine default)")
		syncYield  = fs.Int("sync-yield", 0, "sync only: YieldLimit override (0 = engine default); small values force contended waits into the policies' slow phases")
		simWorkers = fs.Int("sim-workers", 24, "simulated thread count for the sim subcommand (paper: 24)")
		windows    = fs.Int("windows", 200, "pipeline only: windows per measured stream")
		winSizes   = fs.String("window-sizes", "64,256,1024", "pipeline only: comma-separated tasks per window")
		chainLen   = fs.Int("chain-len", 8, "pipeline only: dependency-chain depth within each window")
		pipeSizes  = fs.String("pipeline-task-sizes", "0,100,1000", "pipeline only: counter task sizes (small: the streaming overhead regime)")
		stealTasks = fs.Int("steal-tasks", 256, "steal only: independent task count n")
		stealDur   = fs.Duration("steal-dur", 200*time.Microsecond, "steal only: sleeping task body duration")
		exp        = fs.Int("experiment", 0, "fig8 only: restrict to one experiment 1..4 (0 = all)")
		chromeOut  = fs.String("chrome", "", "replay only: also write a Chrome trace of one traced run to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rio-bench [flags] {fig2|fig3|fig4|fig6|fig7|fig8|sim|sim7|hpl|costmodel|ablation|replay|sync|steal|pipeline|all}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one subcommand required")
	}
	cmd := fs.Arg(0)

	taskSizes, err := parseUints(*sizes)
	if err != nil {
		return fmt.Errorf("-task-sizes: %w", err)
	}
	tileSizes, err := parseInts(*tiles)
	if err != nil {
		return fmt.Errorf("-tile-sizes: %w", err)
	}
	ccfg := bench.CounterConfig{
		Workers: *workers, Tasks: *tasks, TaskSizes: taskSizes,
		Warmup: *warmup, Reps: *reps, Seed: *seed,
	}
	gcfg := bench.GEMMConfig{
		N: *n, TileSizes: tileSizes, Workers: *workers,
		Warmup: *warmup, Reps: *reps,
	}
	f7cfg := bench.Fig7Config{
		MaxWorkers: *maxW, TasksPerWorker: *perW, TaskSize: *f7size,
		Warmup: *warmup, Reps: *reps, WithPruned: true, WithCentralized: true,
	}

	var rows []bench.Row
	addRows := func(r []bench.Row, err error) error {
		if err != nil {
			return err
		}
		rows = append(rows, r...)
		return nil
	}

	switch cmd {
	case "fig2":
		err = addRows(bench.Fig2(gcfg))
	case "fig3":
		err = addRows(bench.Fig3(gcfg))
	case "fig4":
		err = addRows(bench.Fig4(gcfg))
	case "fig6":
		err = addRows(bench.Fig6(ccfg))
	case "fig7":
		err = addRows(bench.Fig7(f7cfg))
	case "fig8":
		if *exp != 0 {
			err = addRows(bench.Fig8(bench.Fig8Experiment(*exp), ccfg))
		} else {
			err = addRows(bench.Fig8All(ccfg))
		}
	case "sim":
		simRows, costs, serr := bench.SimFig8(bench.SimConfig{
			SimWorkers: *simWorkers, FitWorkers: *workers, FitTasks: 4096,
			Tasks: *tasks, TaskSizes: taskSizes, Seed: *seed,
			Warmup: *warmup, Reps: *reps,
		})
		if serr != nil {
			return serr
		}
		fmt.Printf("fitted: rio declare=%v acquire=%v release=%v; centralized dispatch=%v complete=%v; %.3f ns/op\n",
			costs.RIO.DeclareCost, costs.RIO.AcquireCost, costs.RIO.ReleaseCost,
			costs.Centralized.DispatchCost, costs.Centralized.CompleteCost, costs.NsPerOp)
		rows = append(rows, simRows...)
	case "sim7":
		simRows, costs, serr := bench.SimFig7(bench.SimConfig{
			SimWorkers: *simWorkers, FitWorkers: *workers, FitTasks: 4096,
			Warmup: *warmup, Reps: *reps,
		}, *perW, *simWorkers, *f7size)
		if serr != nil {
			return serr
		}
		fmt.Printf("fitted: rio declare=%v acquire=%v release=%v; %.3f ns/op\n",
			costs.RIO.DeclareCost, costs.RIO.AcquireCost, costs.RIO.ReleaseCost, costs.NsPerOp)
		rows = append(rows, simRows...)
	case "hpl":
		err = addRows(bench.HPL(bench.HPLConfig{
			N: *n, PanelWidths: hplWidths(*n, tileSizes), Workers: *workers,
			Warmup: *warmup, Reps: *reps,
		}))
	case "ablation":
		err = addRows(bench.Ablations(bench.AblationConfig{
			Workers: *workers, Warmup: *warmup, Reps: *reps,
			TaskSize: 200, Tasks: *tasks,
		}))
	case "replay":
		rcfg := bench.ReplayConfig{
			Workers: *workers, TasksPerWorker: *perW, TaskSize: *f7size,
			Warmup: *warmup, Reps: *reps,
		}
		err = addRows(bench.ReplayAblation(rcfg))
		if err == nil && *chromeOut != "" {
			var f *os.File
			if f, err = os.Create(*chromeOut); err == nil {
				err = bench.WriteReplayChromeTrace(f, rcfg)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
	case "sync":
		r := *readers
		if r == 0 {
			r = *workers
		}
		err = addRows(bench.SyncAblation(bench.SyncConfig{
			Workers: *workers, Rounds: *rounds, Readers: r,
			TasksPerWorker: *perW, TaskSize: *syncSize, BlockDur: *syncBlock,
			SpinLimit: *syncSpin, YieldLimit: *syncYield,
			Warmup: *warmup, Reps: *reps,
		}))
	case "steal":
		err = addRows(bench.StealAblation(bench.StealConfig{
			Workers: *workers, Tasks: *stealTasks, TaskDur: *stealDur,
			Warmup: *warmup, Reps: *reps,
		}))
	case "pipeline":
		var wsz []int
		if wsz, err = parseInts(*winSizes); err != nil {
			return fmt.Errorf("-window-sizes: %w", err)
		}
		var psz []uint64
		if psz, err = parseUints(*pipeSizes); err != nil {
			return fmt.Errorf("-pipeline-task-sizes: %w", err)
		}
		err = addRows(bench.PipelineAblation(bench.PipelineConfig{
			Workers: *workers, Windows: *windows, WindowSizes: wsz,
			ChainLen: *chainLen, TaskSizes: psz,
			Warmup: *warmup, Reps: *reps,
		}))
	case "costmodel":
		rep, cerr := bench.CostModel(ccfg)
		if cerr != nil {
			return cerr
		}
		return bench.RenderCostModel(os.Stdout, rep)
	case "all":
		for _, f := range []func() ([]bench.Row, error){
			func() ([]bench.Row, error) { return bench.Fig2(gcfg) },
			func() ([]bench.Row, error) { return bench.Fig3(gcfg) },
			func() ([]bench.Row, error) { return bench.Fig4(gcfg) },
			func() ([]bench.Row, error) { return bench.Fig6(ccfg) },
			func() ([]bench.Row, error) { return bench.Fig7(f7cfg) },
			func() ([]bench.Row, error) { return bench.Fig8All(ccfg) },
		} {
			if err = addRows(f()); err != nil {
				break
			}
		}
		if err == nil {
			rep, cerr := bench.CostModel(ccfg)
			if cerr != nil {
				return cerr
			}
			defer bench.RenderCostModel(os.Stdout, rep)
		}
	default:
		fs.Usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		return bench.WriteJSON(os.Stdout, rows)
	case *csvOut:
		return bench.WriteCSV(os.Stdout, rows)
	}
	return bench.RenderRows(os.Stdout, rows)
}

// hplWidths reuses the -tile-sizes flag as panel widths, dropping values
// that do not divide n (a full-width panel degenerates to unblocked LU and
// is kept).
func hplWidths(n int, tiles []int) []int {
	var out []int
	for _, b := range tiles {
		if b >= 1 && b <= n && n%b == 0 {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = []int{n}
	}
	return out
}

func parseUints(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
