package main

import "testing"

// The CLI is a thin shell over internal/bench; these tests exercise flag
// parsing, subcommand dispatch and the helpers with tiny workloads.

func TestRunSubcommands(t *testing.T) {
	base := []string{
		"-workers", "3", "-tasks", "64", "-task-sizes", "50",
		"-reps", "1", "-warmup", "0",
		"-n", "16", "-tile-sizes", "8,16",
		"-max-workers", "2", "-tasks-per-worker", "32", "-fig7-task-size", "16",
	}
	for _, cmd := range []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "costmodel", "hpl"} {
		if err := run(append(append([]string{}, base...), cmd)); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
}

func TestRunPipeline(t *testing.T) {
	args := []string{"-workers", "2", "-reps", "1", "-warmup", "0",
		"-windows", "8", "-window-sizes", "16", "-chain-len", "4",
		"-pipeline-task-sizes", "0", "-json", "pipeline"}
	if err := run(args); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-window-sizes", "x", "pipeline"}); err == nil {
		t.Error("bad window sizes accepted")
	}
	if err := run([]string{"-window-sizes", "2", "-chain-len", "4", "pipeline"}); err == nil {
		t.Error("window size below chain length accepted")
	}
}

func TestRunFig8SingleExperiment(t *testing.T) {
	args := []string{"-workers", "3", "-tasks", "64", "-task-sizes", "50",
		"-reps", "1", "-warmup", "0", "-experiment", "2", "fig8"}
	if err := run(args); err != nil {
		t.Error(err)
	}
}

func TestRunSim(t *testing.T) {
	args := []string{"-workers", "3", "-tasks", "64", "-task-sizes", "50,5000",
		"-reps", "1", "-warmup", "0", "-sim-workers", "8", "sim"}
	if err := run(args); err != nil {
		t.Error(err)
	}
}

func TestRunCSVOutput(t *testing.T) {
	args := []string{"-workers", "3", "-tasks", "32", "-task-sizes", "50",
		"-reps", "1", "-warmup", "0", "-csv", "fig6"}
	if err := run(args); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"-task-sizes", "abc", "fig6"}); err == nil {
		t.Error("bad task sizes accepted")
	}
	if err := run([]string{"-tile-sizes", "x", "fig3"}); err == nil {
		t.Error("bad tile sizes accepted")
	}
}

func TestHPLWidths(t *testing.T) {
	got := hplWidths(32, []int{7, 8, 16, 64})
	if len(got) != 2 || got[0] != 8 || got[1] != 16 {
		t.Errorf("hplWidths = %v, want [8 16]", got)
	}
	if got := hplWidths(32, []int{7}); len(got) != 1 || got[0] != 32 {
		t.Errorf("fallback = %v, want [32]", got)
	}
}

func TestParsers(t *testing.T) {
	u, err := parseUints(" 1, 2 ,3")
	if err != nil || len(u) != 3 || u[2] != 3 {
		t.Errorf("parseUints = %v, %v", u, err)
	}
	i, err := parseInts("4,5")
	if err != nil || len(i) != 2 || i[1] != 5 {
		t.Errorf("parseInts = %v, %v", i, err)
	}
	if _, err := parseUints("-1"); err == nil {
		t.Error("negative uint accepted")
	}
}
