// Command rio-graph inspects the task flows of the paper's workloads:
// structural statistics, mapping load-balance, pruning effectiveness, and
// JSON / Graphviz-DOT export.
//
//	rio-graph -workload lu -size 4
//	rio-graph -workload gemm -size 3 -dot          # DOT on stdout
//	rio-graph -workload random -size 200 -json     # JSON on stdout
//	rio-graph -workload lu -size 6 -workers 4 -mapping owner
//
// Workloads: independent, random, gemm, lu, cholesky, wavefront.
// Mappings: cyclic, block, owner (2-D block-cyclic owner-computes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rio-graph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rio-graph", flag.ContinueOnError)
	workload := fs.String("workload", "lu", "independent | random | gemm | lu | cholesky | wavefront")
	size := fs.Int("size", 4, "workload size (tile count, task count, or grid side)")
	workers := fs.Int("workers", 4, "worker count for mapping statistics")
	mapping := fs.String("mapping", "owner", "cyclic | block | owner")
	seed := fs.Int64("seed", 42, "seed for the random workload")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	jsonOut := fs.Bool("json", false, "emit JSON instead of statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildGraph(*workload, *size, *seed)
	if err != nil {
		return err
	}
	if *dot {
		return g.WriteDOT(out)
	}
	if *jsonOut {
		return g.WriteJSON(out)
	}

	s := g.Summarize()
	fmt.Fprintf(out, "workload   %s\n", s.Name)
	fmt.Fprintf(out, "tasks      %d\n", s.Tasks)
	fmt.Fprintf(out, "data       %d\n", s.NumData)
	fmt.Fprintf(out, "edges      %d (%.2f deps/task)\n", s.Edges, s.AvgDeps)
	fmt.Fprintf(out, "depth      %d (critical path in tasks)\n", s.Depth)
	fmt.Fprintf(out, "max width  %d (peak available parallelism)\n", s.MaxWidth)

	m, err := buildMapping(*mapping, g, *workers)
	if err != nil {
		return err
	}
	if err := sched.Validate(g, m, *workers); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nmapping %s over %d workers\n", *mapping, *workers)
	fmt.Fprintf(out, "load histogram: %v\n", sched.Histogram(g, m, *workers))
	rel := sched.Relevant(g, m, *workers)
	fmt.Fprintf(out, "pruning: %.1f%% of per-worker bookkeeping removable (§3.5)\n",
		100*sched.PruneRatio(rel))
	return nil
}

func buildGraph(workload string, size int, seed int64) (*stf.Graph, error) {
	switch workload {
	case "independent":
		return graphs.Independent(size), nil
	case "random":
		return graphs.RandomDeps(size, 128, 2, 1, seed), nil
	case "gemm":
		return graphs.GEMM(size), nil
	case "lu":
		return graphs.LU(size), nil
	case "cholesky":
		return graphs.Cholesky(size), nil
	case "wavefront":
		return graphs.Wavefront(size, size), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func buildMapping(name string, g *stf.Graph, p int) (stf.Mapping, error) {
	switch name {
	case "cyclic":
		return sched.Cyclic(p), nil
	case "block":
		return sched.Block(len(g.Tasks), p), nil
	case "owner":
		return sched.OwnerComputes(g, sched.NewGrid2D(p)), nil
	}
	return nil, fmt.Errorf("unknown mapping %q", name)
}
