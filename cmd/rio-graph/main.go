// Command rio-graph inspects the task flows of the paper's workloads:
// structural statistics, mapping load-balance, pruning effectiveness, and
// JSON / Graphviz-DOT export.
//
//	rio-graph -workload lu -size 4
//	rio-graph -workload gemm -size 3 -dot          # DOT on stdout
//	rio-graph -workload random -size 200 -json     # JSON on stdout
//	rio-graph -workload lu -size 6 -workers 4 -mapping owner
//
// The -json output is the wire format of the rio-serve service: POST it
// to /v1/flows verbatim. Workloads and mappings use the shared grammar
// of internal/server/ingest (the same one rio-vet and the server
// accept), so a flow built here is parsed, validated and identified —
// the stats include the content hash the server assigns it — exactly as
// a submission would be.
//
// Workloads: lu, cholesky, gemm, wavefront, chain, independent, random.
// Mappings: cyclic, block, blockcyclic:B, single:W, owner (owner2d).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rio/internal/sched"
	"rio/internal/server/ingest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rio-graph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rio-graph", flag.ContinueOnError)
	workload := fs.String("workload", "lu", "lu | cholesky | gemm | wavefront | chain | independent | random")
	size := fs.Int("size", 4, "workload size (tile count, task count, or grid side)")
	workers := fs.Int("workers", 4, "worker count for mapping statistics")
	mapping := fs.String("mapping", "owner", "cyclic | block | blockcyclic:B | single:W | owner")
	seed := fs.Int64("seed", 42, "seed for the random workload")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	jsonOut := fs.Bool("json", false, "emit JSON (the rio-serve wire format) instead of statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := ingest.Workload(*workload, *size, *seed)
	if err != nil {
		return err
	}
	if *dot {
		return g.WriteDOT(out)
	}
	if *jsonOut {
		return g.WriteJSON(out)
	}

	// Validate the (graph, workers, mapping) instance and derive its
	// content identity through the exact path a server submission takes.
	ms := &ingest.MappingSpec{Spec: *mapping}
	sub, err := ingest.NewSubmission(g, ms, *workers)
	if err != nil {
		return err
	}

	s := g.Summarize()
	fmt.Fprintf(out, "workload   %s\n", s.Name)
	fmt.Fprintf(out, "tasks      %d\n", s.Tasks)
	fmt.Fprintf(out, "data       %d\n", s.NumData)
	fmt.Fprintf(out, "edges      %d (%.2f deps/task)\n", s.Edges, s.AvgDeps)
	fmt.Fprintf(out, "depth      %d (critical path in tasks)\n", s.Depth)
	fmt.Fprintf(out, "max width  %d (peak available parallelism)\n", s.MaxWidth)
	fmt.Fprintf(out, "flow id    %s (rio-serve content hash under mapping %s)\n", sub.Hash, ms.Canonical())

	m := sub.Mapping
	fmt.Fprintf(out, "\nmapping %s over %d workers\n", *mapping, *workers)
	fmt.Fprintf(out, "load histogram: %v\n", sched.Histogram(g, m, *workers))
	rel := sched.Relevant(g, m, *workers)
	fmt.Fprintf(out, "pruning: %.1f%% of per-worker bookkeeping removable (§3.5)\n",
		100*sched.PruneRatio(rel))
	return nil
}
