package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "lu", "-size", "4", "-workers", "4", "-mapping", "owner"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workload   lu", "tasks", "depth", "load histogram", "pruning"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllWorkloadsAndMappings(t *testing.T) {
	for _, wl := range []string{"independent", "random", "gemm", "lu", "cholesky", "wavefront"} {
		for _, m := range []string{"cyclic", "block", "owner"} {
			var buf bytes.Buffer
			if err := run([]string{"-workload", wl, "-size", "4", "-mapping", m}, &buf); err != nil {
				t.Errorf("%s/%s: %v", wl, m, err)
			}
		}
	}
}

func TestRunDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "gemm", "-size", "2", "-dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "digraph") {
		t.Errorf("DOT output = %q...", buf.String()[:20])
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "lu", "-size", "2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"tasks"`) {
		t.Error("JSON output missing tasks field")
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-mapping", "nope"}, &buf); err == nil {
		t.Error("unknown mapping accepted")
	}
}
