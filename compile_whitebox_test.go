package rio

// White-box tests of the compiled-program cache's concurrency contract:
// singleflight deduplication of concurrent first callers, and the cache
// generation counter that keeps a SetMapping/Invalidate racing an
// in-flight compilation from inserting a stale program.

import (
	"sync"
	"sync/atomic"
	"testing"

	"rio/internal/graphs"
	"rio/internal/stf"
	"rio/internal/verify"
)

// newTestEngine builds a 2-worker verifying engine for the cache tests.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Options{Workers: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConcurrentFirstCallersCompileOnce is the singleflight contract: N
// goroutines racing Precompile on the same uncached graph must trigger
// exactly one compile+certify (one miss), the rest waiting and counting
// as hits, and every caller must get the same program.
func TestConcurrentFirstCallersCompileOnce(t *testing.T) {
	const callers = 32
	e := newTestEngine(t)
	g := graphs.Chain(64)

	var (
		start sync.WaitGroup
		wg    sync.WaitGroup
		gate  = make(chan struct{})
		got   [callers]*CompiledProgram
	)
	start.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			start.Done()
			<-gate
			cp, err := e.Precompile(g)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			got[i] = cp
		}(i)
	}
	start.Wait()
	close(gate)
	wg.Wait()

	hits, misses, entries := e.CacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 compile under %d concurrent first callers", misses, callers)
	}
	if hits != callers-1 {
		t.Errorf("hits = %d, want %d (every non-leader counts as a hit)", hits, callers-1)
	}
	if entries != 1 {
		t.Errorf("entries = %d, want 1", entries)
	}
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different program than caller 0", i)
		}
	}
	// The shared program must actually run.
	if err := e.RunCompiled(got[0], func(*Task, WorkerID) {}); err != nil {
		t.Fatal(err)
	}
}

// holdCompile installs a testCompileDelay that blocks the first
// compilation until release is closed (later compilations — the retry
// after an invalidation — pass straight through) and counts attempts.
func holdCompile(t *testing.T) (entered, release chan struct{}, attempts *atomic.Int64) {
	t.Helper()
	entered = make(chan struct{})
	release = make(chan struct{})
	attempts = &atomic.Int64{}
	testCompileDelay = func(*Graph) {
		if attempts.Add(1) == 1 {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { testCompileDelay = nil })
	return entered, release, attempts
}

// TestSetMappingDiscardsInflightCompile pins the generation-counter fix:
// a compile held open across a SetMapping must be thrown away — a
// program compiled under the old mapping must never enter the
// new-mapping cache — and redone under the new mapping.
func TestSetMappingDiscardsInflightCompile(t *testing.T) {
	e := newTestEngine(t)
	g := graphs.Chain(16)
	entered, release, attempts := holdCompile(t)

	single := func(stf.TaskID) stf.WorkerID { return 0 }
	done := make(chan struct{})
	var cp *CompiledProgram
	var runErr error
	go func() {
		defer close(done)
		cp, runErr = e.Precompile(g)
	}()
	<-entered            // leader is mid-compile under the cyclic default
	e.SetMapping(single) // flush + generation bump while it is in flight
	close(release)       // let the stale compile finish
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}

	if n := attempts.Load(); n != 2 {
		t.Errorf("compile attempts = %d, want 2 (stale compile discarded, then redone)", n)
	}
	// The program the caller got — and the one in the cache — must be the
	// one compiled under the *new* mapping: certify ownership against it.
	if rep := verify.Certify(g, cp, verify.Config{Mapping: single}); len(rep.Findings) != 0 {
		t.Errorf("returned program does not certify against the new mapping:\n%v", rep.Findings)
	}
	e.mu.Lock()
	cached := e.cache[g]
	e.mu.Unlock()
	if cached != cp {
		t.Errorf("cache holds a different program than the caller got")
	}
	if err := e.RunCompiled(cp, func(*Task, WorkerID) {}); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidateDiscardsInflightCompile: Invalidate racing a miss must
// likewise keep the in-flight program out of the cache (the caller's
// graph may have been mutated under it) and force a recompile.
func TestInvalidateDiscardsInflightCompile(t *testing.T) {
	e := newTestEngine(t)
	g := graphs.Chain(16)
	entered, release, attempts := holdCompile(t)

	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = e.Precompile(g)
	}()
	<-entered
	e.Invalidate(g)
	close(release)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if n := attempts.Load(); n != 2 {
		t.Errorf("compile attempts = %d, want 2 (invalidated compile discarded, then redone)", n)
	}
	if _, misses, entries := e.CacheStats(); misses != 1 || entries != 1 {
		t.Errorf("misses/entries = %d/%d, want 1/1 (only the post-invalidate compile lands)", misses, entries)
	}
}

// TestWaitersRetryAfterInvalidatedCompile: goroutines parked on a
// leader whose compile was invalidated must retry (and succeed) rather
// than receive the discarded program or a spurious error.
func TestWaitersRetryAfterInvalidatedCompile(t *testing.T) {
	const waiters = 8
	e := newTestEngine(t)
	g := graphs.Chain(16)
	entered, release, _ := holdCompile(t)

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, err := e.Precompile(g); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-entered

	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			cp, err := e.Precompile(g)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if cp == nil {
				t.Errorf("waiter %d: nil program", i)
			}
		}(i)
	}
	e.SetMapping(func(stf.TaskID) stf.WorkerID { return 1 })
	close(release)
	<-leaderDone
	wg.Wait()

	if _, _, entries := e.CacheStats(); entries != 1 {
		t.Errorf("entries = %d, want 1", entries)
	}
}

// TestSetMappingRunGraphRaceStress interleaves SetMapping flushes with
// RunGraph executions and Precompile warming (the serving pattern) under
// the race detector: every run must execute the whole flow exactly once,
// and the survivor program must certify against the final mapping.
func TestSetMappingRunGraphRaceStress(t *testing.T) {
	const rounds = 30
	e := newTestEngine(t)
	g := graphs.Chain(32)
	single := func(stf.TaskID) stf.WorkerID { return 0 }

	var executed atomic.Int64
	kernel := func(*Task, WorkerID) { executed.Add(1) }

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // warming goroutine: concurrent Precompile misses/hits
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := e.Precompile(g); err != nil {
				t.Errorf("precompile: %v", err)
				return
			}
		}
	}()
	go func() { // flushing goroutine: alternating mappings
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if i%2 == 0 {
				e.SetMapping(single)
			} else {
				e.SetMapping(nil)
			}
		}
	}()
	for i := 0; i < rounds; i++ { // runner: compiled executions
		before := executed.Load()
		if err := e.RunGraph(g, kernel); err != nil {
			t.Fatal(err)
		}
		if got := executed.Load() - before; got != int64(len(g.Tasks)) {
			t.Fatalf("run %d executed %d tasks, want %d", i, got, len(g.Tasks))
		}
	}
	wg.Wait()

	e.SetMapping(single)
	cp, err := e.Precompile(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Certify(g, cp, verify.Config{Mapping: single}); len(rep.Findings) != 0 {
		t.Errorf("final program does not certify against the final mapping:\n%v", rep.Findings)
	}
}
