package rio

// White-box tests for the runtime decorators: the wrappers New composes
// around an engine must neither erase the optional interfaces the engine
// offers (GraphRunner, Streamer) nor invent capabilities it lacks.

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rio/internal/stf"
)

func wrapVariants(t *testing.T, rt Runtime) map[string]Runtime {
	t.Helper()
	o := Options{Preflight: PreflightAccess}
	return map[string]Runtime{
		"deadline":            withDeadline(rt, time.Minute),
		"preflight":           withPreflight(rt, o),
		"deadline(preflight)": withDeadline(withPreflight(rt, o), time.Minute),
		"preflight(deadline)": withPreflight(withDeadline(rt, time.Minute), o),
		"streaming":           withStreaming(rt, rt),
		"full stack":          withStreaming(withPreflight(withDeadline(rt, time.Minute), o), rt),
	}
}

// TestWrappersPreserveEngineCapabilities: every decorator combination
// around the in-order Engine still type-asserts to GraphRunner and
// Streamer — the interface-preservation contract of the API redesign.
func TestWrappersPreserveEngineCapabilities(t *testing.T) {
	eng, err := NewEngine(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range wrapVariants(t, eng) {
		if _, ok := w.(GraphRunner); !ok {
			t.Errorf("%s: wrapped Engine lost GraphRunner", name)
		}
		if _, ok := w.(Streamer); !ok {
			t.Errorf("%s: wrapped Engine lost Streamer", name)
		}
		if w.NumWorkers() != 2 || w.Name() != "rio" {
			t.Errorf("%s: Runtime surface broken: %s/%d", name, w.Name(), w.NumWorkers())
		}
	}
}

// TestWrappersInventNoCapabilities: wrapping a runtime that lacks an
// optional interface must not make a type assertion for it succeed —
// except Streamer on the streaming wrapper, whose whole purpose is to
// provide the fallback.
func TestWrappersInventNoCapabilities(t *testing.T) {
	seq, err := newEngine(Options{Model: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range wrapVariants(t, seq) {
		if _, ok := w.(GraphRunner); ok {
			t.Errorf("%s: wrapper invented GraphRunner on the sequential engine", name)
		}
		_, isStreamer := w.(Streamer)
		wantStreamer := strings.Contains(name, "streaming") || strings.Contains(name, "full")
		if isStreamer != wantStreamer {
			t.Errorf("%s: Streamer = %v, want %v", name, isStreamer, wantStreamer)
		}
	}
}

// TestWrappedGraphRunnerExecutes: the forwarded RunGraph actually runs,
// with the decorator semantics applied — the preflight wrapper rejects a
// defective graph before execution, the deadline wrapper bounds it.
func TestWrappedGraphRunnerExecutes(t *testing.T) {
	eng, err := NewEngine(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := RecordProgram(2, func(s Submitter) {
		s.Submit(func() {}, Write(0))
		s.Submit(func() {}, Read(0), Write(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	k := func(*stf.Task, WorkerID) { n.Add(1) }

	wrapped := withDeadline(withPreflight(Runtime(eng), Options{Preflight: PreflightAccess}), time.Minute)
	gr, ok := wrapped.(GraphRunner)
	if !ok {
		t.Fatal("wrapped engine lost GraphRunner")
	}
	if err := gr.RunGraph(g, k); err != nil {
		t.Fatalf("wrapped RunGraph: %v", err)
	}
	if n.Load() != 2 {
		t.Fatalf("wrapped RunGraph executed %d tasks, want 2", n.Load())
	}

	// A graph that reads data before its first write must be rejected by
	// the preflight decorator, not executed.
	bad, err := RecordProgram(1, func(s Submitter) {
		s.Submit(func() {}, Read(0))
		s.Submit(func() {}, Write(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Store(0)
	var pf *PreflightError
	if err := gr.RunGraph(bad, k); !errors.As(err, &pf) {
		t.Fatalf("preflight-wrapped RunGraph(bad) = %v, want PreflightError", err)
	}
	if n.Load() != 0 {
		t.Fatal("rejected graph still executed tasks")
	}
}

// TestWrappedStreamerExecutes: Stream through the full decorator stack
// reaches the native session (shape-cache misses prove it) and runs.
func TestWrappedStreamerExecutes(t *testing.T) {
	eng, err := NewEngine(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := withStreaming(withPreflight(withDeadline(Runtime(eng), time.Minute), Options{Preflight: PreflightAccess}), eng)
	st, ok := wrapped.(Streamer)
	if !ok {
		t.Fatal("wrapped engine lost Streamer")
	}
	s, err := st.Stream(1, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	// A window that reads a datum before this window's write: as a
	// program, preflight would reject it (uninitialized read) — it must
	// not apply to stream windows, where the datum routinely carries an
	// earlier window's value.
	s.Submit(func() { n.Add(1) }, Read(0))
	s.Submit(func() { n.Add(1) }, Write(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatalf("streamed tasks did not run")
	}
	if _, misses, _ := s.CacheStats(); misses != 1 {
		t.Errorf("wrapped Stream took the fallback path (misses = %d, want 1)", misses)
	}
}

// TestWrapperCapabilityErrors: calling a forwarded capability on a wrapper
// whose inner runtime lacks it degrades to an error, not a panic. (New
// masks these methods out via preserveCaps; direct construction is the
// only way to reach them.)
func TestWrapperCapabilityErrors(t *testing.T) {
	seq, err := newEngine(Options{Model: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	d := &deadlineRuntime{Runtime: seq, timeout: time.Minute}
	if err := d.RunGraph(&Graph{}, nil); err == nil || !strings.Contains(err.Error(), "GraphRunner") {
		t.Errorf("deadline.RunGraph on sequential = %v, want capability error", err)
	}
	if _, err := d.Stream(1, StreamOptions{}); err == nil || !strings.Contains(err.Error(), "Streamer") {
		t.Errorf("deadline.Stream on sequential = %v, want capability error", err)
	}
	p := &preflightRuntime{Runtime: seq, opts: Options{Preflight: PreflightAccess}}
	if err := p.RunGraph(&Graph{}, nil); err == nil || !strings.Contains(err.Error(), "GraphRunner") {
		t.Errorf("preflight.RunGraph on sequential = %v, want capability error", err)
	}
	if _, err := p.Stream(1, StreamOptions{}); err == nil || !strings.Contains(err.Error(), "Streamer") {
		t.Errorf("preflight.Stream on sequential = %v, want capability error", err)
	}
}

// TestNewReturnsStreamerForAllModels: the public constructor's composed
// result implements Streamer for every model and option combination.
func TestNewReturnsStreamerForAllModels(t *testing.T) {
	for _, m := range []Model{InOrder, Centralized, CentralizedWS, CentralizedPrio, Sequential} {
		for _, o := range []Options{
			{Model: m, Workers: 2},
			{Model: m, Workers: 2, Timeout: time.Minute},
			{Model: m, Workers: 2, Preflight: PreflightAccess},
			{Model: m, Workers: 2, Timeout: time.Minute, Preflight: PreflightAccess},
		} {
			rt, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := rt.(Streamer); !ok {
				t.Errorf("New(%v, timeout=%v, preflight=%v): no Streamer", m, o.Timeout, o.Preflight)
			}
			if m == InOrder {
				if _, ok := rt.(GraphRunner); !ok {
					t.Errorf("New(InOrder, timeout=%v, preflight=%v): no GraphRunner", o.Timeout, o.Preflight)
				}
			}
		}
	}
}
