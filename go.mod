module rio

go 1.24
