package rio

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/pprof"

	"rio/internal/trace"
)

// Observability helpers: exporting a Runtime's always-on Progress counters
// to the standard monitoring surfaces (Prometheus text format, expvar) and
// tagging task execution with pprof labels. All of them only *read* the
// engine's counters; none of them changes what a run does.

// WriteMetrics writes a Progress snapshot in the Prometheus text
// exposition format. See MetricsHandler for serving an engine over HTTP;
// use WriteMetrics directly to embed the samples in an existing handler
// or a log.
func WriteMetrics(w io.Writer, p Progress) error {
	return trace.WriteMetrics(w, p)
}

// MetricsHandler returns an http.Handler exposing rt's Progress counters
// in the Prometheus text exposition format. Each request takes a fresh
// snapshot, so the handler can be scraped while a run is in flight:
//
//	http.Handle("/metrics", rio.MetricsHandler(rt))
//
// The counters reset when a new run starts (each run publishes a fresh
// table); scrapers see per-run progressions, not process-lifetime totals.
//
// Write errors are surfaced, not swallowed: an error before the first
// byte reaches the client becomes a 500 (the scrape visibly failed,
// instead of an empty 200 the scraper would record as "no samples");
// an error after the first byte — the status line is already on the
// wire — is logged, so a half-written exposition never passes silently.
func MetricsHandler(rt Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cw := &countingWriter{w: w}
		if err := trace.WriteMetrics(cw, rt.Progress()); err != nil {
			if cw.n == 0 {
				// Nothing flushed yet: the status code is still ours to set.
				http.Error(w, "rio: writing metrics: "+err.Error(), http.StatusInternalServerError)
				return
			}
			logMetricsError(err)
		}
	})
}

// logMetricsError reports a mid-exposition metrics write failure. A
// package variable so handler tests can observe the after-first-byte
// path; production use keeps the default standard-library logger.
var logMetricsError = func(err error) {
	log.Printf("rio: metrics handler: writing exposition after first byte: %v", err)
}

// countingWriter tracks whether any byte reached the underlying writer,
// which decides whether a metrics write error can still become a 500.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// PublishExpvar publishes rt's Progress under the given expvar name (the
// /debug/vars JSON surface). It must be called once per name per process
// — expvar.Publish panics on duplicates, mirroring expvar's own contract.
func PublishExpvar(name string, rt Runtime) {
	expvar.Publish(name, expvar.Func(func() any { return rt.Progress() }))
}

// LabelKernels wraps k so every execution runs under pprof labels
//
//	rio_kernel=<kernelName(t.Kernel)>  rio_worker=<w>
//
// making CPU profiles of a run attributable per kernel and per worker
// (`go tool pprof -tagfocus`). kernelName may be nil ("kernel <id>").
// The labels cost two small allocations per task — wrap only when
// profiling; the engines themselves never label.
func LabelKernels(k Kernel, kernelName func(int) string) Kernel {
	name := kernelName
	if name == nil {
		name = func(sel int) string { return fmt.Sprintf("kernel %d", sel) }
	}
	return func(t *Task, w WorkerID) {
		labels := pprof.Labels("rio_kernel", name(t.Kernel), "rio_worker", fmt.Sprintf("%d", w))
		pprof.Do(context.Background(), labels, func(context.Context) {
			k(t, w)
		})
	}
}
